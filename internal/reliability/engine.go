// Package reliability implements the Monte-Carlo evaluation machinery for
// the PAIR study: the semi-analytic inherent-fault (BER) sweep behind
// figures F1/F2/F6, the per-fault-type coverage campaign behind table T2
// and figure F7, and the device-lifetime simulation behind figure F3.
//
// # Semi-analytic BER sweep
//
// Raw Monte-Carlo cannot resolve failure probabilities of 1e-12 at low
// bit-error rates. Instead the sweep conditions on the number of flipped
// stored bits: P(fail) = sum_k Binom(totalBits, ber, k) * P(fail | k),
// with P(fail | k) estimated once per k by injecting exactly k distinct
// random weak cells into the stored image. The conditional terms are
// BER-independent, so one set of conditional estimates serves the whole
// sweep — and the tail terms are exact binomial weights, letting the
// curves extend to arbitrarily low BER.
//
// # Campaign execution
//
// Every Monte-Carlo loop here runs through internal/campaign: trials are
// sliced into shards with seeds derived from (label, seed, shard index),
// never from a worker index, so results are bit-identical for any worker
// count and survive kill-and-resume through campaign checkpoints. The
// *Ctx variants accept a context for cancellation plus campaign.Options
// for checkpointing/progress; the plain-named functions are blocking
// wrappers that keep the original fire-and-forget signatures.
package reliability

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"pair/internal/campaign"
	"pair/internal/ecc"
	"pair/internal/faults"
	"pair/internal/schemes"
)

// Campaign labels name a scheme *and* its organization (scheme names
// alone are not unique across device widths or DRAM generations) via
// schemes.CampaignID — the registry's frozen checkpoint-compatible
// identity, byte-identical to the schemeLabel format this package used
// before the registry existed, so old checkpoint directories resume.

// mergeCounts folds one shard's outcome counts into the aggregate.
func mergeCounts(agg *[4]int64, s [4]int64) {
	for i := range agg {
		agg[i] += s[i]
	}
}

// MergeCounts is the exported shard-count fold for callers assembling
// campaign aggregates outside this package (the fleet coordinator folds
// worker fragments with it, in ascending shard order, so its aggregate
// is byte-identical to a local campaign.Run).
func MergeCounts(agg *[4]int64, s [4]int64) { mergeCounts(agg, s) }

// RatesFromCounts normalizes outcome counts by the campaign trial
// count — the exported form of the per-campaign rate derivation, so
// remote executors reproduce local rates from merged counts exactly.
func RatesFromCounts(counts [4]int64, trials int) OutcomeRates {
	return ratesFromCounts(counts, trials)
}

// ratesFromCounts normalizes outcome counts by the campaign trial count.
func ratesFromCounts(counts [4]int64, trials int) OutcomeRates {
	n := float64(trials)
	return OutcomeRates{
		OK:  float64(counts[ecc.OutcomeOK]) / n,
		CE:  float64(counts[ecc.OutcomeCE]) / n,
		DUE: float64(counts[ecc.OutcomeDUE]) / n,
		SDC: float64(counts[ecc.OutcomeSDC]) / n,
	}
}

// runTrials executes n encode/inject/decode trials with the given RNG and
// returns the outcome counts. Schemes offering the slab fast path
// (ecc.BatchScheme) decode in chunks of up to 64 trials per call; plain
// buffered schemes reuse the stored image and both line buffers across
// trials (allocation-free steady state). The RNG draw order is identical
// on every path — encode and injection consume the stream in trial order
// and decoding draws nothing — so counts do not depend on which path ran.
func runTrials(scheme ecc.Scheme, rng *rand.Rand, n int, inject func(*rand.Rand, *ecc.Stored)) (counts [4]int64) {
	if bs, ok := scheme.(ecc.BatchScheme); ok {
		return runTrialsBatch(bs, rng, n, inject)
	}
	line := make([]byte, scheme.Org().LineBytes())
	if buf, ok := scheme.(ecc.BufferedScheme); ok {
		st := buf.NewStored()
		decoded := make([]byte, len(line))
		for t := 0; t < n; t++ {
			rng.Read(line)
			buf.EncodeInto(st, line)
			inject(rng, st)
			claim := buf.DecodeInto(decoded, st)
			counts[ecc.Classify(line, decoded, claim)]++
		}
		return counts
	}
	for t := 0; t < n; t++ {
		rng.Read(line)
		st := scheme.Encode(line)
		inject(rng, st)
		decoded, claim := scheme.Decode(st)
		counts[ecc.Classify(line, decoded, claim)]++
	}
	return counts
}

// trialChunk is how many trials runTrialsBatch hands to one
// DecodeBatchInto call: one slab group, so the bitsliced syndrome sweep
// certifies a whole chunk of clean trials in a single pass.
const trialChunk = 64

// runTrialsBatch is the slab inner loop: per chunk, the trials are
// encoded and injected one at a time in trial order (preserving the RNG
// stream of the scalar path exactly), then the whole chunk is decoded
// with one DecodeBatchInto call and classified.
func runTrialsBatch(scheme ecc.BatchScheme, rng *rand.Rand, n int, inject func(*rand.Rand, *ecc.Stored)) (counts [4]int64) {
	width := trialChunk
	if n < width {
		width = n
	}
	lineBytes := scheme.Org().LineBytes()
	lines := make([][]byte, width)
	decoded := make([][]byte, width)
	sts := make([]*ecc.Stored, width)
	claims := make([]ecc.Claim, width)
	for i := 0; i < width; i++ {
		lines[i] = make([]byte, lineBytes)
		decoded[i] = make([]byte, lineBytes)
		sts[i] = scheme.NewStored()
	}
	for done := 0; done < n; done += width {
		m := width
		if n-done < m {
			m = n - done
		}
		for i := 0; i < m; i++ {
			rng.Read(lines[i])
			scheme.EncodeInto(sts[i], lines[i])
			inject(rng, sts[i])
		}
		scheme.DecodeBatchInto(decoded[:m], sts[:m], claims[:m])
		for i := 0; i < m; i++ {
			counts[ecc.Classify(lines[i], decoded[i], claims[i])]++
		}
	}
	return counts
}

// OutcomeRates is the per-access probability of each classified outcome.
type OutcomeRates struct {
	OK, CE, DUE, SDC float64
}

// Fail returns the total failure probability (DUE + SDC).
func (r OutcomeRates) Fail() float64 { return r.DUE + r.SDC }

// Add accumulates s into r scaled by w.
func (r *OutcomeRates) addScaled(s OutcomeRates, w float64) {
	r.OK += w * s.OK
	r.CE += w * s.CE
	r.DUE += w * s.DUE
	r.SDC += w * s.SDC
}

// ConditionalProfile holds P(outcome | exactly k flipped stored bits) for
// k = 0..MaxK, estimated by Monte-Carlo.
type ConditionalProfile struct {
	SchemeName string
	TotalBits  int
	Trials     int
	PerK       []OutcomeRates // index k
}

// SweepConfig parameterizes the semi-analytic BER sweep.
type SweepConfig struct {
	MaxK   int   // largest conditioned flip count (default 16)
	Trials int   // Monte-Carlo trials per k (default 20000)
	Seed   int64 // base RNG seed
	// Faults, when non-nil, is an ambient fault scenario corrupting every
	// trial's image after the conditioned weak-cell flips. The campaign
	// label then gains a "faults=<spec>" component; nil is the frozen
	// default whose labels (and therefore seed streams and checkpoint
	// files) stay byte-identical to the pre-scenario engine.
	Faults faults.Scenario
}

func (c *SweepConfig) setDefaults() {
	if c.MaxK == 0 {
		c.MaxK = 16
	}
	if c.Trials == 0 {
		c.Trials = 20000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// BuildProfile estimates the conditional outcome rates for a scheme. It
// is the blocking wrapper around BuildProfileCtx.
func BuildProfile(scheme ecc.Scheme, cfg SweepConfig) *ConditionalProfile {
	prof, err := BuildProfileCtx(context.Background(), scheme, cfg, campaign.Options{})
	if err != nil {
		panic(fmt.Sprintf("reliability: BuildProfile: %v", err)) // only reachable if the shard fn itself fails
	}
	return prof
}

// BuildProfileCtx estimates the conditional outcome rates for a scheme,
// running one sharded campaign per conditioned flip count k. Results are
// bit-identical for a given (scheme, config) regardless of worker count
// or interruption/resume, because every shard derives its RNG stream
// from the campaign label, seed and shard index alone.
func BuildProfileCtx(ctx context.Context, scheme ecc.Scheme, cfg SweepConfig, opts campaign.Options) (*ConditionalProfile, error) {
	cfg.setDefaults()
	totalBits := scheme.Encode(make([]byte, scheme.Org().LineBytes())).TotalBits()
	prof := &ConditionalProfile{
		SchemeName: scheme.Name(),
		TotalBits:  totalBits,
		Trials:     cfg.Trials,
		PerK:       make([]OutcomeRates, cfg.MaxK+1),
	}
	prof.PerK[0] = OutcomeRates{OK: 1}

	var ambient func(*rand.Rand, *ecc.Stored)
	if cfg.Faults != nil {
		ambient = ecc.ScenarioInjector(cfg.Faults)
		// The ambient scenario corrupts even the k=0 row: the sweep's
		// baseline is no longer a guaranteed-clean access.
		spec := campaign.Spec{
			Label:  campaign.JoinLabel("profile", schemes.CampaignID(scheme), "k=0", "faults="+cfg.Faults.Spec()),
			Trials: cfg.Trials,
			Seed:   cfg.Seed,
		}
		counts, err := campaign.Run(ctx, spec, opts, func(rng *rand.Rand, n int) [4]int64 {
			return runTrials(scheme, rng, n, ambient)
		}, mergeCounts)
		if err != nil {
			return nil, err
		}
		prof.PerK[0] = ratesFromCounts(counts, cfg.Trials)
	}

	for k := 1; k <= cfg.MaxK; k++ {
		k := k
		label := campaign.JoinLabel("profile", schemes.CampaignID(scheme), fmt.Sprintf("k=%d", k))
		inject := func(r *rand.Rand, st *ecc.Stored) {
			ecc.FlipRandomStoredBits(r, st, k)
		}
		if ambient != nil {
			label = campaign.JoinLabel(label, "faults="+cfg.Faults.Spec())
			inject = func(r *rand.Rand, st *ecc.Stored) {
				ecc.FlipRandomStoredBits(r, st, k)
				ambient(r, st)
			}
		}
		spec := campaign.Spec{
			Label:  label,
			Trials: cfg.Trials,
			Seed:   cfg.Seed,
		}
		counts, err := campaign.Run(ctx, spec, opts, func(rng *rand.Rand, n int) [4]int64 {
			return runTrials(scheme, rng, n, inject)
		}, mergeCounts)
		if err != nil {
			return nil, err
		}
		prof.PerK[k] = ratesFromCounts(counts, cfg.Trials)
	}
	return prof, nil
}

// AtBER folds the conditional profile with the binomial flip-count
// distribution at the given inherent bit-error rate. Probability mass at
// k > MaxK is conservatively counted as failure (split evenly between DUE
// and SDC); at the BERs of interest it is negligible.
func (p *ConditionalProfile) AtBER(ber float64) OutcomeRates {
	if ber < 0 || ber > 1 {
		panic(fmt.Sprintf("reliability: invalid BER %v", ber))
	}
	var out OutcomeRates
	tail := 1.0
	for k := 0; k < len(p.PerK); k++ {
		w := binomPMF(p.TotalBits, k, ber)
		out.addScaled(p.PerK[k], w)
		tail -= w
	}
	if tail > 0 {
		out.DUE += tail / 2
		out.SDC += tail / 2
	}
	return out
}

// binomPMF computes C(n,k) p^k (1-p)^(n-k) in log space.
func binomPMF(n, k int, p float64) float64 {
	if p == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p == 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := lchoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lg)
}

func lchoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// SweepPoint is one (BER, outcome rates) sample of a sweep.
type SweepPoint struct {
	BER   float64
	Rates OutcomeRates
}

// Sweep evaluates the profile across the given BERs.
func (p *ConditionalProfile) Sweep(bers []float64) []SweepPoint {
	out := make([]SweepPoint, len(bers))
	for i, b := range bers {
		out[i] = SweepPoint{BER: b, Rates: p.AtBER(b)}
	}
	return out
}

// LogspaceBERs returns n BERs log-spaced over [lo, hi].
func LogspaceBERs(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		panic("reliability: invalid BER range")
	}
	out := make([]float64, n)
	ratio := math.Log(hi / lo)
	for i := range out {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(n-1))
	}
	return out
}

// CoverageResult reports outcome rates for one scheme under one injected
// fault pattern kind.
type CoverageResult struct {
	Scheme string
	Label  string
	Rates  OutcomeRates
	Trials int
}

// Coverage measures outcome rates when the given injection function is
// applied to every trial's image. It is the blocking wrapper around
// CoverageCtx.
func Coverage(scheme ecc.Scheme, label string, trials int, seed int64, inject func(*rand.Rand, *ecc.Stored)) CoverageResult {
	r, err := CoverageCtx(context.Background(), scheme, label, trials, seed, inject, campaign.Options{})
	if err != nil {
		panic(fmt.Sprintf("reliability: Coverage: %v", err)) // only reachable if the shard fn itself fails
	}
	return r
}

// CoverageCtx measures outcome rates when the given injection function
// is applied to every trial's image, as one sharded campaign. Injectors
// receive the per-trial RNG and the cloned image. Shard RNG streams are
// derived from the seed, the (scheme, label) campaign identity and the
// shard index, so campaigns over several labels sharing one seed draw
// independent randomness per label and results do not depend on worker
// scheduling.
func CoverageCtx(ctx context.Context, scheme ecc.Scheme, label string, trials int, seed int64, inject func(*rand.Rand, *ecc.Stored), opts campaign.Options) (CoverageResult, error) {
	spec := campaign.Spec{
		Label:  campaign.JoinLabel("coverage", schemes.CampaignID(scheme), label),
		Trials: trials,
		Seed:   seed,
	}
	counts, err := campaign.Run(ctx, spec, opts, func(rng *rand.Rand, n int) [4]int64 {
		return runTrials(scheme, rng, n, inject)
	}, mergeCounts)
	if err != nil {
		return CoverageResult{}, err
	}
	return CoverageResult{
		Scheme: scheme.Name(),
		Label:  label,
		Trials: trials,
		Rates:  ratesFromCounts(counts, trials),
	}, nil
}

// CoverageEnvCtx is CoverageCtx with an optional ambient fault scenario
// layered on top of the per-label injector. A nil env delegates to
// CoverageCtx unchanged — same label, same seed streams, same checkpoint
// identity as before scenarios existed. A non-nil env appends
// ",faults=<spec>" to the campaign label (a distinct checkpoint
// namespace) and corrupts each trial's image with the scenario after the
// label's own injector runs.
func CoverageEnvCtx(ctx context.Context, scheme ecc.Scheme, label string, trials int, seed int64, inject func(*rand.Rand, *ecc.Stored), env faults.Scenario, opts campaign.Options) (CoverageResult, error) {
	if env == nil {
		return CoverageCtx(ctx, scheme, label, trials, seed, inject, opts)
	}
	ambient := ecc.ScenarioInjector(env)
	wrapped := func(rng *rand.Rand, st *ecc.Stored) {
		inject(rng, st)
		ambient(rng, st)
	}
	return CoverageCtx(ctx, scheme, label+",faults="+env.Spec(), trials, seed, wrapped, opts)
}

// ScenarioCoverage measures outcome rates when a registered fault
// scenario is the sole corruption applied to every trial's image. It is
// the blocking wrapper around ScenarioCoverageCtx.
func ScenarioCoverage(scheme ecc.Scheme, sc faults.Scenario, trials int, seed int64) CoverageResult {
	r, err := ScenarioCoverageCtx(context.Background(), scheme, sc, trials, seed, campaign.Options{})
	if err != nil {
		panic(fmt.Sprintf("reliability: ScenarioCoverage: %v", err)) // only reachable if the shard fn itself fails
	}
	return r
}

// ScenarioCampaignSpec returns the campaign identity of a scenario
// coverage run: the spec ScenarioCoverageCtx executes and the one a
// fleet coordinator shards into leases. Keeping the label derivation in
// one place is what makes remote execution provably byte-identical —
// every shard seed is FNV(label, seed, index), so agreeing on the spec
// means agreeing on every RNG stream.
func ScenarioCampaignSpec(scheme ecc.Scheme, sc faults.Scenario, trials int, seed int64) campaign.Spec {
	return campaign.Spec{
		Label:  campaign.JoinLabel("scenario", schemes.CampaignID(scheme), sc.Spec()),
		Trials: trials,
		Seed:   seed,
	}
}

// ScenarioShardFn returns the shard kernel of a scenario coverage
// campaign: n trials corrupted only by the scenario, tallied by outcome.
// It is the function a fleet worker runs a leased shard through
// (campaign.ExecShard), identical to the one ScenarioCoverageCtx hands
// campaign.Run locally.
func ScenarioShardFn(scheme ecc.Scheme, sc faults.Scenario) func(rng *rand.Rand, trials int) [4]int64 {
	inject := ecc.ScenarioInjector(sc)
	return func(rng *rand.Rand, n int) [4]int64 {
		return runTrials(scheme, rng, n, inject)
	}
}

// ScenarioCoverageCtx runs one sharded campaign decoding images
// corrupted only by the given scenario. The campaign label is
// "scenario/<campaign-id>/<canonical spec>" — the "scenario" prefix
// keeps these campaigns in their own checkpoint namespace, away from
// the frozen "coverage" labels (whose short names, e.g. "pin", collide
// with scenario IDs). The canonical spec in the label means equal specs
// written in different option orders share one checkpoint and one seed
// stream.
func ScenarioCoverageCtx(ctx context.Context, scheme ecc.Scheme, sc faults.Scenario, trials int, seed int64, opts campaign.Options) (CoverageResult, error) {
	spec := ScenarioCampaignSpec(scheme, sc, trials, seed)
	counts, err := campaign.Run(ctx, spec, opts, ScenarioShardFn(scheme, sc), mergeCounts)
	if err != nil {
		return CoverageResult{}, err
	}
	return CoverageResult{
		Scheme: scheme.Name(),
		Label:  sc.Spec(),
		Trials: trials,
		Rates:  ratesFromCounts(counts, trials),
	}, nil
}

// StandardCoverageLabels returns the fault-pattern injectors of table T2,
// in presentation order.
func StandardCoverageLabels() []struct {
	Label  string
	Inject func(*rand.Rand, *ecc.Stored)
} {
	mk := func(kind faults.Kind) func(*rand.Rand, *ecc.Stored) {
		return func(rng *rand.Rand, st *ecc.Stored) {
			ecc.InjectAccessFault(rng, st, kind, -1)
		}
	}
	return []struct {
		Label  string
		Inject func(*rand.Rand, *ecc.Stored)
	}{
		{"1-cell", mk(faults.PermanentCell)},
		{"2-cell", func(rng *rand.Rand, st *ecc.Stored) {
			chip := rng.Intn(len(st.Chips))
			ecc.InjectAccessFault(rng, st, faults.PermanentCell, chip)
			ecc.InjectAccessFault(rng, st, faults.PermanentCell, chip)
		}},
		{"pin", mk(faults.PermanentPin)},
		{"column-lane", mk(faults.PermanentColumn)},
		{"word", mk(faults.PermanentWord)},
		{"row", mk(faults.PermanentRow)},
		{"local-wordline", mk(faults.PermanentLocalWordline)},
		{"bank", mk(faults.PermanentBank)},
		{"pin-burst-4", func(rng *rand.Rand, st *ecc.Stored) {
			faults.InjectPinBurst(rng, st.Chips[rng.Intn(st.Org.ChipsPerRank)].Data, 4)
		}},
		{"beat-burst-2", func(rng *rand.Rand, st *ecc.Stored) {
			faults.InjectBeatBurst(rng, st.Chips[rng.Intn(st.Org.ChipsPerRank)].Data, 2)
		}},
	}
}
