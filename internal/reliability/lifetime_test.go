package reliability

import (
	"math"
	"math/rand"
	"testing"

	"pair/internal/core"
	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/faults"
)

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0.5, 3, 50} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += poisson(rng, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("poisson(%v) sample mean %v", mean, got)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Fatal("non-positive mean must give 0")
	}
}

func TestBernoulliFail(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Zero hazard never fails.
	if fail, _ := bernoulliFail(rng, patternStats{}, 1000); fail {
		t.Fatal("zero hazard failed")
	}
	// Certain hazard with huge footprint always fails.
	fail, _ := bernoulliFail(rng, patternStats{fail: 1, sdc: 1}, 10)
	if !fail {
		t.Fatal("certain hazard survived")
	}
	// SDC share respected: fail=0.5, sdc=0.5 => all failures silent.
	for i := 0; i < 100; i++ {
		if f, s := bernoulliFail(rng, patternStats{fail: 0.5, sdc: 0.5}, 1<<30); f && !s {
			t.Fatal("sdc share not respected")
		}
	}
}

func TestSchemeCoupling(t *testing.T) {
	if schemeCouplesChips(core.MustNew(dram.DDR4x16(), core.DefaultConfig())) {
		t.Fatal("PAIR must be per-chip")
	}
	if !schemeCouplesChips(ecc.NewXED(dram.DDR4x16())) {
		t.Fatal("XED must couple chips")
	}
}

func TestRunLifetimeSmokeAndOrdering(t *testing.T) {
	// Small population with inflated FITs so every scheme sees faults;
	// verifies mechanics (no panics, monotone CDF, None fails most).
	fits := []faults.FITEntry{
		{Kind: faults.PermanentCell, Rate: 5e4},
		{Kind: faults.TransientBit, Rate: 5e4},
		{Kind: faults.PermanentPin, Rate: 1e4},
		{Kind: faults.PermanentRow, Rate: 5e3},
	}
	run := func(s ecc.Scheme) LifetimeResult {
		return RunLifetime(LifetimeConfig{
			Scheme:         s,
			Years:          7,
			Devices:        800,
			PatternSamples: 120,
			Seed:           11,
			FITs:           fits,
		})
	}
	none := run(ecc.NewNone(dram.DDR4x16()))
	pairS := run(core.MustNew(dram.DDR4x16(), core.DefaultConfig()))
	iecc := run(ecc.NewIECC(dram.DDR4x16()))

	if none.FailProb() == 0 {
		t.Fatal("unprotected scheme never failed under inflated FITs")
	}
	if pairS.FailProb() >= none.FailProb() {
		t.Fatalf("PAIR (%v) not better than none (%v)", pairS.FailProb(), none.FailProb())
	}
	if pairS.FailProb() > iecc.FailProb() {
		t.Fatalf("PAIR (%v) worse than IECC (%v)", pairS.FailProb(), iecc.FailProb())
	}
	for _, r := range []LifetimeResult{none, pairS, iecc} {
		if len(r.FailYearCDF) != 7 {
			t.Fatalf("CDF has %d years", len(r.FailYearCDF))
		}
		for i := 1; i < len(r.FailYearCDF); i++ {
			if r.FailYearCDF[i] < r.FailYearCDF[i-1] {
				t.Fatal("CDF not monotone")
			}
		}
		if got := r.FailYearCDF[len(r.FailYearCDF)-1]; math.Abs(got-r.FailProb()) > 1e-9 {
			t.Fatalf("CDF end %v != fail prob %v", got, r.FailProb())
		}
		if r.Failed != r.SDCFailures+r.DUEFailures {
			t.Fatal("failure split inconsistent")
		}
	}
	// None's failures are all silent (no detection at all).
	if none.DUEFailures != 0 {
		t.Fatal("unprotected scheme reported detected errors")
	}
}

func TestRunLifetimeDeterministic(t *testing.T) {
	cfg := LifetimeConfig{
		Scheme:         ecc.NewIECC(dram.DDR4x16()),
		Years:          3,
		Devices:        300,
		PatternSamples: 80,
		Seed:           5,
		FITs:           []faults.FITEntry{{Kind: faults.PermanentCell, Rate: 1e5}},
	}
	a := RunLifetime(cfg)
	b := RunLifetime(cfg)
	if a.Failed != b.Failed || a.SDCFailures != b.SDCFailures {
		t.Fatalf("lifetime not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunLifetimeDefaultsApplied(t *testing.T) {
	r := RunLifetime(LifetimeConfig{
		Scheme:  ecc.NewNone(dram.DDR4x16()),
		Devices: 50, // keep the smoke test fast; other fields default
	})
	if r.MissionYears != 7 || len(r.FailYearCDF) != 7 {
		t.Fatalf("defaults not applied: %+v", r)
	}
}

func TestTransientPairingNeedsTemporalOverlap(t *testing.T) {
	// With only transient faults at a rate where pairs within one scrub
	// interval are rare but totals are high, IECC (which fails only on
	// same-chip pairs) must fail far less often than the raw fault count
	// suggests. This exercises the expiry purge path.
	fits := []faults.FITEntry{{Kind: faults.TransientBit, Rate: 2e5}}
	r := RunLifetime(LifetimeConfig{
		Scheme:         ecc.NewIECC(dram.DDR4x16()),
		Years:          2,
		ScrubHours:     0.5,
		Devices:        400,
		PatternSamples: 60,
		Seed:           13,
		FITs:           fits,
	})
	// ~2e5 FIT * 4 chips * 17532h = ~14 transients per device; with a
	// 30-minute scrub the expected concurrent pairs are <<1, so the
	// failure probability must stay well below 1.
	if r.FailProb() > 0.5 {
		t.Fatalf("scrubbing ineffective: fail prob %v", r.FailProb())
	}
}
