package reliability

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"pair/internal/campaign"
	"pair/internal/ecc"
	"pair/internal/faults"
	"pair/internal/schemes"
)

// HoursPerYear is the mean Gregorian year in hours.
const HoursPerYear = 8766.0

// LifetimeConfig parameterizes the device-lifetime Monte-Carlo (figure
// F3): a population of ranks accumulates operational faults at field FIT
// rates over a mission time; a rank fails when some access pattern
// defeats its ECC scheme.
type LifetimeConfig struct {
	Scheme         ecc.Scheme
	Years          float64
	ScrubHours     float64 // transient faults survive one scrub interval
	Devices        int     // population size (Monte-Carlo trials)
	PatternSamples int     // decode samples per fault/pair pattern
	Seed           int64
	FITs           []faults.FITEntry
	// RepairBudget, when positive, models post-package repair (PPR): a
	// fault whose first failure manifests as a *detected* error (DUE) is
	// repaired — remapped to spare resources — consuming one budget unit
	// instead of failing the device. Silent corruption (SDC) can never
	// trigger repair; that asymmetry is why a scheme's DUE/SDC split
	// matters beyond raw failure counts (experiment F12).
	RepairBudget int
}

func (c *LifetimeConfig) setDefaults() {
	if c.Years == 0 {
		c.Years = 7
	}
	if c.ScrubHours == 0 {
		c.ScrubHours = 24
	}
	if c.Devices == 0 {
		c.Devices = 20000
	}
	if c.PatternSamples == 0 {
		c.PatternSamples = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.FITs == nil {
		c.FITs = faults.DefaultFITTable()
	}
}

// LifetimeResult aggregates the population outcome.
type LifetimeResult struct {
	Scheme       string
	Devices      int
	Failed       int // devices with any DUE or SDC within the mission
	SDCFailures  int
	DUEFailures  int
	Repairs      int       // PPR events across the population (RepairBudget > 0)
	FailYearCDF  []float64 // cumulative failure probability at end of year i+1
	MissionYears float64
}

// FailProb returns the mission failure probability.
func (r LifetimeResult) FailProb() float64 {
	if r.Devices == 0 {
		return 0
	}
	return float64(r.Failed) / float64(r.Devices)
}

// SDCProb returns the mission SDC probability.
func (r LifetimeResult) SDCProb() float64 {
	if r.Devices == 0 {
		return 0
	}
	return float64(r.SDCFailures) / float64(r.Devices)
}

// patternKey caches pattern-failure estimates: single faults by kind,
// pairs by kind pair + same-chip flag.
type patternKey struct {
	a, b     faults.Kind
	pair     bool
	sameChip bool
}

type patternStats struct {
	fail float64 // P(DUE or SDC) per affected access
	sdc  float64 // P(SDC) per affected access
}

// lifetimeEngine holds shared state for one population run.
type lifetimeEngine struct {
	cfg     LifetimeConfig
	coupled bool // decode couples chips (rank-level correction)

	mu    sync.Mutex
	cache map[patternKey]patternStats
}

// schemeCouplesChips reports whether two faults in different chips can
// interact inside one decode. Per-chip codeword schemes (IECC, DUO, PAIR)
// are uncoupled; rank-level schemes are coupled.
func schemeCouplesChips(s ecc.Scheme) bool {
	switch s.Name() {
	case "xed", "secded", "none", "duo-rank":
		return true
	default:
		return false
	}
}

// RunLifetime executes the lifetime Monte-Carlo and aggregates results.
// It is the blocking wrapper around RunLifetimeCtx.
func RunLifetime(cfg LifetimeConfig) LifetimeResult {
	res, err := RunLifetimeCtx(context.Background(), cfg, campaign.Options{})
	if err != nil {
		panic(fmt.Sprintf("reliability: RunLifetime: %v", err)) // only reachable if the shard fn itself fails
	}
	return res
}

// lifetimeShard is one shard's population outcome. It is the unit the
// campaign checkpoints, so it carries everything the final aggregation
// needs and nothing per-device.
type lifetimeShard struct {
	Failed  int   `json:"failed"`
	SDC     int   `json:"sdc"`
	DUE     int   `json:"due"`
	Repairs int   `json:"repairs"`
	PerYear []int `json:"per_year"` // failures whose first failure fell in year i
}

// mergeLifetimeShards folds one shard into the aggregate.
func mergeLifetimeShards(agg *lifetimeShard, s lifetimeShard) {
	agg.Failed += s.Failed
	agg.SDC += s.SDC
	agg.DUE += s.DUE
	agg.Repairs += s.Repairs
	if agg.PerYear == nil {
		agg.PerYear = make([]int, len(s.PerYear))
	}
	for i, v := range s.PerYear {
		agg.PerYear[i] += v
	}
}

// RunLifetimeCtx executes the lifetime Monte-Carlo as one sharded
// campaign over the device population. Each shard simulates its slice of
// devices with a shard-derived RNG stream, so the population outcome is
// bit-identical regardless of worker count or interruption point; the
// pattern-failure cache is shared across shards and is itself seeded per
// pattern, so cache warm-up order cannot change results.
func RunLifetimeCtx(ctx context.Context, cfg LifetimeConfig, opts campaign.Options) (LifetimeResult, error) {
	cfg.setDefaults()
	eng := &lifetimeEngine{
		cfg:     cfg,
		coupled: schemeCouplesChips(cfg.Scheme),
		cache:   make(map[patternKey]patternStats),
	}
	nYears := int(math.Ceil(cfg.Years))
	spec := campaign.Spec{
		Label:  campaign.JoinLabel("lifetime", schemes.CampaignID(cfg.Scheme)),
		Trials: cfg.Devices,
		Seed:   cfg.Seed,
	}
	agg, err := campaign.Run(ctx, spec, opts, func(rng *rand.Rand, devices int) lifetimeShard {
		sh := lifetimeShard{PerYear: make([]int, nYears)}
		for d := 0; d < devices; d++ {
			failed, sdc, when, repairs := eng.simulateDevice(rng)
			sh.Repairs += repairs
			if !failed {
				continue
			}
			sh.Failed++
			if sdc {
				sh.SDC++
			} else {
				sh.DUE++
			}
			yr := int(when / HoursPerYear)
			if yr >= nYears {
				yr = nYears - 1
			}
			sh.PerYear[yr]++
		}
		return sh
	}, mergeLifetimeShards)
	if err != nil {
		return LifetimeResult{}, err
	}

	res := LifetimeResult{
		Scheme:       cfg.Scheme.Name(),
		Devices:      cfg.Devices,
		Failed:       agg.Failed,
		SDCFailures:  agg.SDC,
		DUEFailures:  agg.DUE,
		Repairs:      agg.Repairs,
		FailYearCDF:  make([]float64, nYears),
		MissionYears: cfg.Years,
	}
	cum := 0
	for i := 0; i < nYears; i++ {
		if agg.PerYear != nil {
			cum += agg.PerYear[i]
		}
		res.FailYearCDF[i] = float64(cum) / float64(cfg.Devices)
	}
	return res, nil
}

// simulateDevice runs one rank through the mission; it returns whether it
// failed, whether the failure was silent, the failure time in hours, and
// how many PPR events it consumed.
func (e *lifetimeEngine) simulateDevice(rng *rand.Rand) (failed, sdc bool, when float64, repairs int) {
	cfg := e.cfg
	org := cfg.Scheme.Org()
	hours := cfg.Years * HoursPerYear
	chips := float64(org.TotalChips())

	type arrival struct {
		t float64
		f faults.Fault
	}
	var arrivals []arrival
	for _, fit := range cfg.FITs {
		mean := fit.Rate * 1e-9 * hours * chips
		n := poisson(rng, mean)
		for i := 0; i < n; i++ {
			arrivals = append(arrivals, arrival{
				t: rng.Float64() * hours,
				f: faults.Sample(rng, fit.Kind, org),
			})
		}
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].t < arrivals[j].t })

	type active struct {
		f      faults.Fault
		expiry float64 // +Inf for permanents
	}
	budget := cfg.RepairBudget
	// fail handles one manifested failure: silent ones always kill the
	// device; detected ones are absorbed by PPR while budget lasts.
	tryRepair := func(isSDC bool) bool {
		if isSDC || budget <= 0 {
			return false
		}
		budget--
		repairs++
		return true
	}

	var act []active
	for _, a := range arrivals {
		// Purge expired transients.
		live := act[:0]
		for _, x := range act {
			if x.expiry > a.t {
				live = append(live, x)
			}
		}
		act = live

		// Single-fault hazard.
		st := e.patternStats(a.f, nil)
		if fail, isSDC := bernoulliFail(rng, st, a.f.FootprintAccesses(org)); fail {
			if !tryRepair(isSDC) {
				return true, isSDC, a.t, repairs
			}
			continue // fault repaired away; do not register it as active
		}
		// Pairwise hazards with currently active faults.
		repaired := false
		for _, x := range act {
			var overlap int64
			sameChip := x.f.Chip == a.f.Chip
			if sameChip {
				overlap = a.f.OverlapAccesses(x.f, org)
			} else if e.coupled {
				overlap = a.f.SameRankOverlap(x.f, org)
			}
			if overlap == 0 {
				continue
			}
			ps := e.patternStats(a.f, &x.f)
			if fail, isSDC := bernoulliFail(rng, ps, overlap); fail {
				if !tryRepair(isSDC) {
					return true, isSDC, a.t, repairs
				}
				repaired = true
				break
			}
		}
		if repaired {
			continue
		}

		expiry := math.Inf(1)
		if a.f.IsTransient() {
			expiry = a.t + cfg.ScrubHours
		}
		act = append(act, active{f: a.f, expiry: expiry})
	}
	return false, false, 0, repairs
}

// bernoulliFail draws whether any of `accesses` affected accesses fails
// given the per-access pattern stats, and if so whether the failure is
// silent.
func bernoulliFail(rng *rand.Rand, ps patternStats, accesses int64) (fail, sdc bool) {
	if ps.fail <= 0 || accesses <= 0 {
		return false, false
	}
	// P(any fails) = 1 - (1-q)^A, computed stably.
	p := -math.Expm1(float64(accesses) * math.Log1p(-ps.fail))
	if rng.Float64() >= p {
		return false, false
	}
	return true, rng.Float64() < ps.sdc/ps.fail
}

// patternStats estimates (with caching) the per-access failure
// probability of a single fault (g == nil) or a co-located pair.
func (e *lifetimeEngine) patternStats(f faults.Fault, g *faults.Fault) patternStats {
	key := patternKey{a: f.Kind}
	if g != nil {
		key.pair = true
		key.b = g.Kind
		key.sameChip = f.Chip == g.Chip
		if key.b < key.a {
			key.a, key.b = key.b, key.a
		}
	}
	e.mu.Lock()
	if st, ok := e.cache[key]; ok {
		e.mu.Unlock()
		return st
	}
	e.mu.Unlock()

	st := e.measurePattern(key)
	e.mu.Lock()
	e.cache[key] = st
	e.mu.Unlock()
	return st
}

// measurePattern Monte-Carlo-estimates the per-access outcome of a fault
// kind (or pair of kinds). Chip indices are resampled per trial so lane
// positions and chip placement are averaged over.
func (e *lifetimeEngine) measurePattern(key patternKey) patternStats {
	cfg := e.cfg
	org := cfg.Scheme.Org()
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(key.a)<<16 ^ int64(key.b)<<24 ^ boolBit(key.pair)<<40 ^ boolBit(key.sameChip)<<41))
	counts := runTrials(cfg.Scheme, rng, cfg.PatternSamples, func(rng *rand.Rand, st *ecc.Stored) {
		fa := faults.Sample(rng, key.a, org)
		ecc.ApplyDeviceFault(rng, st, fa)
		if key.pair {
			fb := faults.Sample(rng, key.b, org)
			if key.sameChip {
				fb.Chip = fa.Chip
			} else {
				for fb.Chip == fa.Chip {
					fb.Chip = rng.Intn(org.ChipsPerRank)
				}
			}
			ecc.ApplyDeviceFault(rng, st, fb)
		}
	})
	n := float64(cfg.PatternSamples)
	fail := float64(counts[ecc.OutcomeDUE] + counts[ecc.OutcomeSDC])
	return patternStats{fail: fail / n, sdc: float64(counts[ecc.OutcomeSDC]) / n}
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// poisson draws from Poisson(mean) by inversion for small means and
// normal approximation for large ones (means here are < 100).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation with continuity correction.
		n := int(math.Round(rng.NormFloat64()*math.Sqrt(mean) + mean))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
