package reliability

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"pair/internal/campaign"
	"pair/internal/core"
	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/faults"
)

// These tests pin down the campaign engine's central guarantee at the
// reliability-API level: a (scheme, config, seed) triple fully determines
// the result — worker count, GOMAXPROCS and kill/resume boundaries must
// not leak into the numbers.

func flip3(r *rand.Rand, st *ecc.Stored) { ecc.FlipRandomStoredBits(r, st, 3) }

// detTrials spans multiple shards (DefaultShardSize = 1000) so worker
// scheduling actually has room to reorder shard completion.
const detTrials = 2500

func TestProfileIndependentOfWorkerCount(t *testing.T) {
	scheme := ecc.NewIECC(dram.DDR4x16())
	cfg := SweepConfig{MaxK: 3, Trials: detTrials, Seed: 7}
	base, err := BuildProfileCtx(context.Background(), scheme, cfg, campaign.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 7, 16} {
		got, err := BuildProfileCtx(context.Background(), scheme, cfg, campaign.Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("profile differs between 1 and %d workers:\n%+v\n%+v", w, base, got)
		}
	}
}

func TestCoverageIndependentOfGOMAXPROCS(t *testing.T) {
	scheme := core.MustNew(dram.DDR4x16(), core.DefaultConfig())
	runAt := func(procs int) CoverageResult {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		r, err := CoverageCtx(context.Background(), scheme, "det", detTrials, 11, flip3, campaign.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if one, many := runAt(1), runAt(8); !reflect.DeepEqual(one, many) {
		t.Fatalf("coverage differs across GOMAXPROCS:\n%+v\n%+v", one, many)
	}
}

func TestLifetimeIndependentOfWorkerCount(t *testing.T) {
	cfg := LifetimeConfig{
		Scheme:         core.MustNew(dram.DDR4x16(), core.DefaultConfig()),
		Devices:        detTrials,
		PatternSamples: 60,
		Seed:           5,
		FITs: []faults.FITEntry{
			{Kind: faults.PermanentCell, Rate: 5e4},
			{Kind: faults.TransientBit, Rate: 5e4},
		},
	}
	base, err := RunLifetimeCtx(context.Background(), cfg, campaign.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLifetimeCtx(context.Background(), cfg, campaign.Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, got) {
		t.Fatalf("lifetime differs between 1 and 8 workers:\n%+v\n%+v", base, got)
	}
}

// TestCoverageKillAndResume interrupts a checkpointed coverage campaign
// after its first completed shard, resumes it, and requires the resumed
// result to be byte-identical (as JSON) to an uninterrupted run.
func TestCoverageKillAndResume(t *testing.T) {
	scheme := ecc.NewIECC(dram.DDR4x16())
	dir := t.TempDir()

	uninterrupted, err := CoverageCtx(context.Background(), scheme, "resume", detTrials, 3, flip3, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = CoverageCtx(ctx, scheme, "resume", detTrials, 3, flip3, campaign.Options{
		Workers:       1,
		CheckpointDir: dir,
		OnShardDone:   func(done, total int) { cancel() },
	})
	if err == nil {
		t.Fatal("interrupted campaign reported success")
	}

	resumed, err := CoverageCtx(context.Background(), scheme, "resume", detTrials, 3, flip3, campaign.Options{
		CheckpointDir: dir,
		Resume:        true,
	})
	if err != nil {
		t.Fatal(err)
	}

	want, _ := json.Marshal(uninterrupted)
	got, _ := json.Marshal(resumed)
	if string(want) != string(got) {
		t.Fatalf("resumed coverage differs from uninterrupted run:\n%s\n%s", want, got)
	}
}

// TestLifetimeKillAndResume does the same for the lifetime simulation,
// whose shard payload (counts + per-year histogram) is richer.
func TestLifetimeKillAndResume(t *testing.T) {
	cfg := LifetimeConfig{
		Scheme:         ecc.NewIECC(dram.DDR4x16()),
		Devices:        detTrials,
		PatternSamples: 60,
		Seed:           9,
		FITs: []faults.FITEntry{
			{Kind: faults.PermanentCell, Rate: 5e4},
			{Kind: faults.PermanentPin, Rate: 1e4},
		},
	}
	dir := t.TempDir()

	uninterrupted, err := RunLifetimeCtx(context.Background(), cfg, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = RunLifetimeCtx(ctx, cfg, campaign.Options{
		Workers:       1,
		CheckpointDir: dir,
		OnShardDone:   func(done, total int) { cancel() },
	})
	if err == nil {
		t.Fatal("interrupted campaign reported success")
	}

	resumed, err := RunLifetimeCtx(context.Background(), cfg, campaign.Options{
		CheckpointDir: dir,
		Resume:        true,
	})
	if err != nil {
		t.Fatal(err)
	}

	want, _ := json.Marshal(uninterrupted)
	got, _ := json.Marshal(resumed)
	if string(want) != string(got) {
		t.Fatalf("resumed lifetime differs from uninterrupted run:\n%s\n%s", want, got)
	}
}

// TestCoverageLabelsSaltSeedStreams guards against two campaigns with the
// same seed but different labels accidentally sharing randomness.
func TestCoverageLabelsSaltSeedStreams(t *testing.T) {
	scheme := ecc.NewIECC(dram.DDR4x16())
	a, err := CoverageCtx(context.Background(), scheme, "salt-a", detTrials, 21, flip3, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoverageCtx(context.Background(), scheme, "salt-b", detTrials, 21, flip3, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rates == b.Rates {
		t.Fatalf("different labels produced identical rates %+v — seed streams not label-salted", a.Rates)
	}
}
