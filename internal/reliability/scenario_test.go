package reliability

import (
	"context"
	"testing"

	"pair/internal/campaign"
	"pair/internal/ecc"
	"pair/internal/faults"
	"pair/internal/schemes"
)

// evalSet builds the commodity evaluation schemes by registry name.
func evalSet(t *testing.T, names ...string) map[string]ecc.Scheme {
	t.Helper()
	out := make(map[string]ecc.Scheme, len(names))
	for _, n := range names {
		s, err := schemes.New(n)
		if err != nil {
			t.Fatal(err)
		}
		out[n] = s
	}
	return out
}

// TestScenarioDifferential is the strength/weakness matrix of the study,
// executed as assertions instead of a table: each scheme's geometric
// niche must show up under exactly the scenario family its symbolization
// covers, and the universal killer must defeat everyone.
func TestScenarioDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo differential suite")
	}
	const trials = 2000
	set := evalSet(t, "iecc", "xed", "duo", "pair-base", "pair")

	fail := func(scheme, spec string) float64 {
		t.Helper()
		r := ScenarioCoverage(set[scheme], faults.MustScenario(spec), trials, 1)
		return r.Rates.Fail()
	}

	// PAIR's strength: pin and along-pin burst faults stay inside one
	// pin-aligned symbol, so PAIR (and even its t=1 base) never fails —
	// while every beat-aligned or per-bit rival has a failure mode.
	for _, spec := range []string{"pin", "pinburst:b=4", "pinburst:b=8"} {
		for _, scheme := range []string{"pair", "pair-base"} {
			if f := fail(scheme, spec); f != 0 {
				t.Errorf("%s under %s: fail rate %v, want exactly 0", scheme, spec, f)
			}
		}
		for _, rival := range []string{"iecc", "duo"} {
			if f := fail(rival, spec); f == 0 {
				t.Errorf("%s under %s: fail rate 0, expected a nonzero failure mode", rival, spec)
			}
		}
	}

	// DUO's niche: a full-width beat burst covers 8 consecutive pins — 8
	// pin-aligned symbols, hopeless for PAIR — but only 1..2 beat-aligned
	// byte symbols, so DUO corrects the aligned fraction.
	if f := fail("pair", "beatburst:b=8"); f != 1 {
		t.Errorf("pair under beatburst:b=8: fail rate %v, want exactly 1 (8 pin symbols > t=2)", f)
	}
	if f := fail("duo", "beatburst:b=8"); f >= 1 || f <= 0 {
		t.Errorf("duo under beatburst:b=8: fail rate %v, want in (0,1): corrects aligned bursts only", f)
	}

	// XED's niche: its rank-XOR image reconstructs one whole flagged chip,
	// so a single-chip kill is survivable for XED alone.
	if f := fail("xed", "chipkill"); f > 0.05 {
		t.Errorf("xed under chipkill: fail rate %v, want near 0 (rank-XOR reconstruction)", f)
	}
	for _, scheme := range []string{"iecc", "duo", "pair-base", "pair"} {
		if f := fail(scheme, "chipkill"); f < 0.9 {
			t.Errorf("%s under chipkill: fail rate %v, want near 1 (per-chip-access code)", scheme, f)
		}
	}

	// The universal killer: two simultaneous chip failures exceed every
	// evaluated scheme's redundancy, XED's XOR included.
	for scheme := range set {
		if f := fail(scheme, "chipkill:chips=2"); f < 0.9 {
			t.Errorf("%s under chipkill:chips=2: fail rate %v, want near 1", scheme, f)
		}
	}

	// IECC's per-chip SEC Hamming keeps its own niche: any single cell.
	if f := fail("iecc", "cell"); f != 0 {
		t.Errorf("iecc under cell: fail rate %v, want exactly 0 (SEC corrects 1 bit)", f)
	}
}

// TestScenarioCoverageWorkerDeterminism: a scenario campaign's counts
// are a function of (scheme, spec, trials, seed) alone — never of the
// worker count that happened to execute the shards.
func TestScenarioCoverageWorkerDeterminism(t *testing.T) {
	ctx := context.Background()
	for _, spec := range []string{"retention:pop=0.01,cluster=3", "compose(pin,vrt:flicker=0.5)", "chipkill"} {
		sc := faults.MustScenario(spec)
		scheme, err := schemes.New("pair")
		if err != nil {
			t.Fatal(err)
		}
		var base CoverageResult
		for i, workers := range []int{1, 2, 7} {
			r, err := ScenarioCoverageCtx(ctx, scheme, sc, 600, 3, campaign.Options{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				base = r
				continue
			}
			if r != base {
				t.Fatalf("%s: results differ between 1 and %d workers:\n%+v\n%+v", spec, workers, base, r)
			}
		}
	}
}

// scalarOnly hides a scheme's batch fast path, forcing runTrials down the
// one-trial-at-a-time BufferedScheme loop.
type scalarOnly struct{ ecc.BufferedScheme }

// TestScenarioBatchMatchesScalar: for every registered scenario, the slab
// batch decode path must classify bit-identically to the scalar path —
// same campaign label, same seeds, same counts. Scenario injectors draw
// from the trial RNG in encode order on both paths, so any divergence is
// a draw-order or decode bug.
func TestScenarioBatchMatchesScalar(t *testing.T) {
	for _, name := range []string{"pair", "duo", "iecc", "xed"} {
		s, err := schemes.New(name)
		if err != nil {
			t.Fatal(err)
		}
		batch, ok := s.(ecc.BatchScheme)
		if !ok {
			t.Fatalf("%s does not offer the batch fast path", name)
		}
		for _, id := range faults.ScenarioIDs() {
			sc := faults.MustScenario(id)
			fast := ScenarioCoverage(batch, sc, 500, 11)
			slow := ScenarioCoverage(scalarOnly{batch}, sc, 500, 11)
			if fast != slow {
				t.Errorf("%s under %s: batch %+v != scalar %+v", name, id, fast, slow)
			}
		}
	}
}

// TestScenarioCampaignLabel pins the scenario campaign's checkpoint
// identity: the "scenario" prefix (its own namespace, away from the
// frozen "coverage" labels whose short names collide with scenario IDs)
// joined with the scheme's campaign ID and the canonical spec. Changing
// this string orphans every existing scenario checkpoint — do it only
// with a migration story.
func TestScenarioCampaignLabel(t *testing.T) {
	scheme, err := schemes.New("pair")
	if err != nil {
		t.Fatal(err)
	}
	sc := faults.MustScenario("pinburst:b=4")
	got := campaign.JoinLabel("scenario", schemes.CampaignID(scheme), sc.Spec())
	if want := "scenario/pair-x16-bl8-c4/pinburst:b=4"; got != want {
		t.Fatalf("scenario campaign label = %q, want %q", got, want)
	}
	// Equal scenarios written with differently ordered options share one
	// campaign (and its checkpoints), because the label embeds the
	// canonical spec.
	a := faults.MustScenario("retention:pop=1e-5,cluster=3").Spec()
	b := faults.MustScenario("retention:cluster=3,pop=1e-5").Spec()
	if a != b {
		t.Fatalf("canonical specs differ: %q vs %q", a, b)
	}
}

// TestBuildProfileAmbientFaults: a sweep with an ambient scenario keeps
// the frozen default labels untouched (nil Faults) and shifts the k=0
// baseline away from all-OK when the ambient layer bites.
func TestBuildProfileAmbientFaults(t *testing.T) {
	scheme, err := schemes.New("iecc")
	if err != nil {
		t.Fatal(err)
	}
	clean := BuildProfile(scheme, SweepConfig{MaxK: 2, Trials: 400, Seed: 5})
	if clean.PerK[0] != (OutcomeRates{OK: 1}) {
		t.Fatalf("default sweep k=0 row = %+v, want all-OK", clean.PerK[0])
	}
	amb := BuildProfile(scheme, SweepConfig{MaxK: 2, Trials: 400, Seed: 5, Faults: faults.MustScenario("chipkill")})
	if amb.PerK[0].Fail() < 0.9 {
		t.Fatalf("ambient chipkill sweep k=0 fail rate %v, want near 1", amb.PerK[0].Fail())
	}
}
