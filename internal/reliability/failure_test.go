package reliability

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"pair/internal/campaign"
	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/failpoint"
)

// noInject is a coverage injector that flips nothing.
func noInject(*rand.Rand, *ecc.Stored) {}

// TestCoveragePanicIsolatedAndRetried verifies the hardening knobs
// thread through the reliability layer: a panicking shard inside a
// coverage campaign surfaces as a typed ShardError (not a process
// crash), and with a retry budget the same campaign completes with
// results identical to an undisturbed run.
func TestCoveragePanicIsolatedAndRetried(t *testing.T) {
	defer failpoint.Reset()
	s := ecc.NewIECC(dram.DDR4x16())
	clean, err := CoverageCtx(context.Background(), s, "pin", 2000, 1, noInject, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Without a retry budget the panic becomes a structured error whose
	// context names the coverage campaign.
	failpoint.Arm(campaign.FailpointShard, failpoint.Action{Panic: "shard crash", Times: 1})
	_, err = CoverageCtx(context.Background(), s, "pin", 2000, 1, noInject, campaign.Options{})
	var se *campaign.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("panicking coverage shard returned %v, want ShardError", err)
	}
	if !strings.Contains(se.Label, "coverage") || !strings.Contains(se.Label, "pin") {
		t.Fatalf("shard error label %q lacks campaign context", se.Label)
	}

	// With retries the transient panic is absorbed and the result is
	// bit-identical (every attempt reseeds from the shard seed).
	failpoint.Arm(campaign.FailpointShard, failpoint.Action{Panic: "shard crash", Times: 1})
	rep := new(campaign.Report)
	got, err := CoverageCtx(context.Background(), s, "pin", 2000, 1, noInject,
		campaign.Options{Retries: 2, Report: rep})
	if err != nil {
		t.Fatalf("retried coverage failed: %v", err)
	}
	if got != clean {
		t.Fatalf("retried coverage %+v != clean %+v", got, clean)
	}
	if sr, _ := rep.Retries(); sr != 1 {
		t.Fatalf("report counts %d retries, want 1", sr)
	}
}

// TestBuildProfileSurvivesDegradedCheckpointing: a profile campaign
// whose checkpoint writes all fail still completes (memory-only mode)
// with the same profile an unhampered run produces.
func TestBuildProfileSurvivesDegradedCheckpointing(t *testing.T) {
	defer failpoint.Reset()
	s := ecc.NewIECC(dram.DDR4x16())
	cfg := SweepConfig{MaxK: 3, Trials: 1500, Seed: 7}
	clean, err := BuildProfileCtx(context.Background(), s, cfg, campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}

	failpoint.Arm(campaign.FailpointWrite, failpoint.Action{Err: errors.New("disk gone")})
	rep := new(campaign.Report)
	got, err := BuildProfileCtx(context.Background(), s, cfg, campaign.Options{
		CheckpointDir:     t.TempDir(),
		Report:            rep,
		CheckpointBackoff: campaign.Backoff{Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatalf("degraded profile run failed: %v", err)
	}
	if degraded, _ := rep.Degraded(); !degraded {
		t.Fatal("exhausted checkpoint budget did not degrade")
	}
	for k := range clean.PerK {
		if got.PerK[k] != clean.PerK[k] {
			t.Fatalf("degraded profile k=%d %+v != clean %+v", k, got.PerK[k], clean.PerK[k])
		}
	}
}
