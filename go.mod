module pair

go 1.22
