// Benchmark harness: one benchmark per table and figure of the PAIR
// study's evaluation (DESIGN.md section 4 maps IDs to experiments). Each
// benchmark regenerates its artifact at CI scale and reports the
// headline quantity as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Publication-scale runs go through
// `pairsim` (same code, bigger trial counts).
//
// Kernel-level microbenchmarks (encode/decode throughput of each codec)
// live next to their packages' tests in kernels_bench_test.go.
package pair_test

import (
	"testing"

	"pair"
	"pair/internal/experiments"
)

func quickSweep() experiments.SweepSettings {
	s := experiments.QuickSweep()
	s.Trials = 1500
	return s
}

// BenchmarkT1_Config regenerates the scheme-configuration table.
func BenchmarkT1_Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.T1Config()
		if len(t.Rows) < 6 {
			b.Fatal("T1 incomplete")
		}
	}
}

// BenchmarkF1_ReliabilityVsBER regenerates the inherent-fault reliability
// sweep and reports the abstract's headline ratios.
func BenchmarkF1_ReliabilityVsBER(b *testing.B) {
	var ratioXED, ratioDUO float64
	for i := 0; i < b.N; i++ {
		r := experiments.F1F2(experiments.CommoditySchemes(), quickSweep())
		idx := map[string]int{}
		for j, n := range r.Schemes {
			idx[n] = j
		}
		// Ratio at the second-lowest BER point (away from both floors).
		p := 1
		ratioXED = r.Fail[idx["xed"]][p] / r.Fail[idx["pair"]][p]
		ratioDUO = r.Fail[idx["duo"]][p] / r.Fail[idx["pair"]][p]
	}
	b.ReportMetric(ratioXED, "xed/pair")
	b.ReportMetric(ratioDUO, "duo/pair")
}

// BenchmarkF2_SDCVsBER regenerates the silent-corruption sweep and
// reports IECC's SDC excess over PAIR (the miscorrection hazard).
func BenchmarkF2_SDCVsBER(b *testing.B) {
	var ieccSDC, pairSDC float64
	for i := 0; i < b.N; i++ {
		r := experiments.F1F2(experiments.CommoditySchemes(), quickSweep())
		idx := map[string]int{}
		for j, n := range r.Schemes {
			idx[n] = j
		}
		last := len(r.BERs) - 1
		ieccSDC = r.SDC[idx["iecc"]][last]
		pairSDC = r.SDC[idx["pair"]][last]
	}
	b.ReportMetric(ieccSDC, "iecc-sdc@1e-4")
	b.ReportMetric(pairSDC, "pair-sdc@1e-4")
}

// BenchmarkT2_FaultCoverage regenerates the per-fault-pattern outcome
// table.
func BenchmarkT2_FaultCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.T2Coverage(experiments.CommoditySchemes(), 800, 1)
		if len(t.Rows) < 8 {
			b.Fatal("T2 incomplete")
		}
	}
}

// BenchmarkF3_Lifetime regenerates the 7-year mission reliability figure.
func BenchmarkF3_Lifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.F3Lifetime(experiments.CommoditySchemes(), 1500, 1)
		if len(t.Rows) != len(experiments.CommoditySchemes()) {
			b.Fatal("F3 incomplete")
		}
	}
}

// BenchmarkF4_Performance regenerates the SPEC-like performance figure
// and reports the abstract's comparisons (PAIR vs XED ~ +14%, PAIR vs
// DUO ~ 0%).
func BenchmarkF4_Performance(b *testing.B) {
	var overXED, overDUO float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.F4Performance(experiments.PerfSchemes(), 6000)
		if err != nil {
			b.Fatal(err)
		}
		idx := map[string]int{}
		for j, n := range r.Schemes {
			idx[n] = j
		}
		overXED = (r.GeoMean[idx["pair"]]/r.GeoMean[idx["xed"]] - 1) * 100
		overDUO = (r.GeoMean[idx["pair"]]/r.GeoMean[idx["duo"]] - 1) * 100
	}
	b.ReportMetric(overXED, "pair-over-xed-%")
	b.ReportMetric(overDUO, "pair-over-duo-%")
}

// BenchmarkF5_WriteSweep regenerates the write-ratio ablation.
func BenchmarkF5_WriteSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.F5WriteSweep(experiments.PerfSchemes(), 5000)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 6 {
			b.Fatal("F5 incomplete")
		}
	}
}

// BenchmarkF6_Expandability regenerates the expansion-level sweep.
func BenchmarkF6_Expandability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.F6Expandability(1200, 1)
		if len(t.Rows) != 5 {
			b.Fatal("F6 incomplete")
		}
	}
}

// BenchmarkF7_Burst regenerates the burst-error figure.
func BenchmarkF7_Burst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.F7Burst(experiments.CommoditySchemes(), 800, 1)
		if len(t.Rows) != 3 {
			b.Fatal("F7 incomplete")
		}
	}
}

// BenchmarkT3_Complexity regenerates the overhead table.
func BenchmarkT3_Complexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.T3Complexity()
		if len(t.Rows) != 5 {
			b.Fatal("T3 incomplete")
		}
	}
}

// BenchmarkF8_ScrubSweep regenerates the scrub-interval ablation.
func BenchmarkF8_ScrubSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.F8ScrubSweep(experiments.CommoditySchemes(), 400, 1)
		if len(t.Rows) != len(experiments.CommoditySchemes()) {
			b.Fatal("F8 incomplete")
		}
	}
}

// BenchmarkF9_DDR5 regenerates the cross-generation figure.
func BenchmarkF9_DDR5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.F9DDR5(500, 1)
		if len(t.Rows) != 4 {
			b.Fatal("F9 incomplete")
		}
	}
}

// BenchmarkF10_Sparing regenerates the pin-sparing figure.
func BenchmarkF10_Sparing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.F10Sparing(500, 1)
		if len(t.Rows) != 3 {
			b.Fatal("F10 incomplete")
		}
	}
}

// BenchmarkT4_BusEnergy regenerates the bus energy-proxy table.
func BenchmarkT4_BusEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.T4BusEnergy()
		if len(t.Rows) != 6 {
			b.Fatal("T4 incomplete")
		}
	}
}

// BenchmarkF11_ScrubTraffic regenerates the scrub-bandwidth figure.
func BenchmarkF11_ScrubTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.F11ScrubTraffic(3000)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) != 4 {
			b.Fatal("F11 incomplete")
		}
	}
}

// BenchmarkF12_Repair regenerates the post-package-repair figure.
func BenchmarkF12_Repair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.F12Repair(experiments.CommoditySchemes(), 1500, 1)
		if len(t.Rows) != len(experiments.CommoditySchemes()) {
			b.Fatal("F12 incomplete")
		}
	}
}

// BenchmarkEncodeDecode_PAIR measures the headline scheme's line
// protect/recover throughput (the unit the reliability Monte-Carlo
// spends its time in).
func BenchmarkEncodeDecode_PAIR(b *testing.B) {
	scheme := pair.NewPAIR()
	line := make([]byte, 64)
	for i := range line {
		line[i] = byte(i * 7)
	}
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := scheme.Encode(line)
		if _, claim := scheme.Decode(st); claim != pair.ClaimClean {
			b.Fatal("clean decode failed")
		}
	}
}
