package main

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cannedBench = `goos: linux
goarch: amd64
pkg: pair/internal/gf256
BenchmarkGF256Mul-8       	100000000	        10.0 ns/op	 800.00 MB/s	       0 B/op	       0 allocs/op
BenchmarkRSEncode-8       	  500000	      2000 ns/op	      64 B/op	       2 allocs/op
PASS
ok  	pair/internal/gf256	1.234s
`

// withStubRunner swaps the go-test subprocess for canned output.
func withStubRunner(t *testing.T, out string, err error) *[]string {
	t.Helper()
	var gotArgs []string
	orig := runGoTest
	runGoTest = func(args []string, _ io.Writer) ([]byte, error) {
		gotArgs = args
		return []byte(out), err
	}
	t.Cleanup(func() { runGoTest = orig })
	return &gotArgs
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestParseBenchLines(t *testing.T) {
	results := parse(cannedBench)
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	mul := results[0]
	if mul.Name != "BenchmarkGF256Mul" || mul.Iterations != 100000000 {
		t.Fatalf("first result %+v", mul)
	}
	if mul.NsPerOp != 10.0 || mul.MBPerS != 800.0 || mul.BytesPerOp != 0 || mul.AllocsPerOp != 0 {
		t.Fatalf("metrics %+v", mul)
	}
	enc := results[1]
	if enc.NsPerOp != 2000 || enc.BytesPerOp != 64 || enc.AllocsPerOp != 2 || enc.MBPerS != 0 {
		t.Fatalf("metrics %+v", enc)
	}
}

func TestParseAveragesRepeatedRuns(t *testing.T) {
	out := `BenchmarkX-8  100  10.0 ns/op  8 B/op  1 allocs/op
BenchmarkX-8  300  30.0 ns/op  16 B/op  3 allocs/op
`
	results := parse(out)
	if len(results) != 1 {
		t.Fatalf("parsed %d results, want 1 aggregated", len(results))
	}
	r := results[0]
	if r.Iterations != 200 || r.NsPerOp != 20.0 || r.BytesPerOp != 12 || r.AllocsPerOp != 2 {
		t.Fatalf("average wrong: %+v", r)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	if got := parse("PASS\nok  pair  0.1s\nrandom text\n"); len(got) != 0 {
		t.Fatalf("parsed noise as results: %+v", got)
	}
}

func TestNextSlot(t *testing.T) {
	dir := t.TempDir()
	if got, want := nextSlot(dir), filepath.Join(dir, "BENCH_0.json"); got != want {
		t.Fatalf("empty dir slot %q, want %q", got, want)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_0.json"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, want := nextSlot(dir), filepath.Join(dir, "BENCH_1.json"); got != want {
		t.Fatalf("slot after BENCH_0 is %q, want %q", got, want)
	}
}

func TestRunWritesJSON(t *testing.T) {
	gotArgs := withStubRunner(t, cannedBench, nil)
	path := filepath.Join(t.TempDir(), "bench.json")
	code, out, stderr := runCLI(t, "-out", path, "-label", "unit", "-count", "2", "-benchtime", "10x", "-pkg", "a,b")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "wrote "+path+" (2 benchmarks)") {
		t.Fatalf("stdout %q", out)
	}
	// The go test invocation must carry the flags through.
	joined := strings.Join(*gotArgs, " ")
	for _, want := range []string{"-count 2", "-benchtime 10x", "a b", "-benchmem", "-run ^$"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("go args %q missing %q", joined, want)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if f.Label != "unit" || len(f.Benchmarks) != 2 || f.GoVersion == "" {
		t.Fatalf("payload %+v", f)
	}
}

func TestRunDefaultsToNextSlot(t *testing.T) {
	withStubRunner(t, cannedBench, nil)
	dir := t.TempDir()
	wd, _ := os.Getwd()
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(wd) })
	if code, _, stderr := runCLI(t); code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_0.json")); err != nil {
		t.Fatalf("default slot not written: %v", err)
	}
}

func TestRunFailsWhenGoTestFails(t *testing.T) {
	withStubRunner(t, "", errors.New("exit status 1"))
	code, _, stderr := runCLI(t, "-out", filepath.Join(t.TempDir(), "x.json"))
	if code != 1 || !strings.Contains(stderr, "benchjson: go test") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestRunFailsOnEmptyOutput(t *testing.T) {
	withStubRunner(t, "PASS\n", nil)
	code, _, stderr := runCLI(t, "-out", filepath.Join(t.TempDir(), "x.json"))
	if code != 1 || !strings.Contains(stderr, "no benchmark lines parsed") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestRunFailsOnUnwritablePath(t *testing.T) {
	withStubRunner(t, cannedBench, nil)
	code, _, stderr := runCLI(t, "-out", filepath.Join(t.TempDir(), "missing", "x.json"))
	if code != 1 || !strings.Contains(stderr, "benchjson: write") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCLI(t, "-nope"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestListSchemes(t *testing.T) {
	code, out, _ := runCLI(t, "-list-schemes")
	if code != 0 || !strings.Contains(out, "name[@org][:key=val,...]") {
		t.Fatalf("exit %d, out:\n%s", code, out)
	}
}

// writeBaseline marshals a File with the given benchmarks to a temp path.
func writeBaseline(t *testing.T, results []Result) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	raw, err := json.Marshal(File{Benchmarks: results})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareClean(t *testing.T) {
	withStubRunner(t, cannedBench, nil)
	base := writeBaseline(t, []Result{
		{Name: "BenchmarkGF256Mul", NsPerOp: 9.0},
		{Name: "BenchmarkRSEncode", NsPerOp: 1500, BytesPerOp: 64, AllocsPerOp: 2},
	})
	code, out, stderr := runCLI(t, "-compare", base)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q, out:\n%s", code, stderr, out)
	}
	if !strings.Contains(out, "no regressions vs "+base) {
		t.Fatalf("out:\n%s", out)
	}
	// Compare mode without -out must not record a file.
	if strings.Contains(out, "wrote ") {
		t.Fatalf("compare mode wrote a file:\n%s", out)
	}
}

func TestCompareCatchesSlowdown(t *testing.T) {
	withStubRunner(t, cannedBench, nil)
	// Canned GF256Mul runs at 10 ns/op; a 4 ns baseline is a 2.5x slip.
	base := writeBaseline(t, []Result{{Name: "BenchmarkGF256Mul", NsPerOp: 4.0}})
	code, out, stderr := runCLI(t, "-compare", base)
	if code != 1 || !strings.Contains(stderr, "1 regression(s)") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "FAIL    BenchmarkGF256Mul") {
		t.Fatalf("out:\n%s", out)
	}
	// A looser threshold lets the same run pass.
	if code, _, _ := runCLI(t, "-compare", base, "-threshold", "3"); code != 0 {
		t.Fatal("threshold 3 should pass a 2.5x ratio")
	}
}

func TestCompareCatchesAllocGrowthAndMissing(t *testing.T) {
	withStubRunner(t, cannedBench, nil)
	base := writeBaseline(t, []Result{
		{Name: "BenchmarkRSEncode", NsPerOp: 2000, AllocsPerOp: 1}, // canned run has 2
		{Name: "BenchmarkGone", NsPerOp: 5},
	})
	code, out, stderr := runCLI(t, "-compare", base)
	if code != 1 || !strings.Contains(stderr, "2 regression(s)") {
		t.Fatalf("exit %d, stderr %q, out:\n%s", code, stderr, out)
	}
	if !strings.Contains(out, "FAIL    BenchmarkRSEncode: 2 allocs/op vs 1 baseline") {
		t.Fatalf("alloc growth not reported:\n%s", out)
	}
	if !strings.Contains(out, "MISSING BenchmarkGone") {
		t.Fatalf("missing benchmark not reported:\n%s", out)
	}
	// Benchmarks unknown to the baseline are informational only.
	if !strings.Contains(out, "new     BenchmarkGF256Mul") {
		t.Fatalf("new benchmark not reported:\n%s", out)
	}
}

func TestCompareWithOutStillRecords(t *testing.T) {
	withStubRunner(t, cannedBench, nil)
	base := writeBaseline(t, []Result{{Name: "BenchmarkGF256Mul", NsPerOp: 9.0}})
	path := filepath.Join(t.TempDir(), "bench.json")
	code, out, stderr := runCLI(t, "-compare", base, "-out", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "wrote "+path) {
		t.Fatalf("out:\n%s", out)
	}
}

func TestCompareBadBaseline(t *testing.T) {
	withStubRunner(t, cannedBench, nil)
	if code, _, _ := runCLI(t, "-compare", filepath.Join(t.TempDir(), "nope.json")); code != 1 {
		t.Fatal("missing baseline must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := runCLI(t, "-compare", bad); code != 1 {
		t.Fatal("unparseable baseline must fail")
	}
}

func TestListProfiles(t *testing.T) {
	code, out, _ := runCLI(t, "-list-profiles")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "ddr5-4800") || !strings.Contains(out, "refresh") {
		t.Fatalf("-list-profiles output wrong:\n%s", out)
	}
}
