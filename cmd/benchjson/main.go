// Command benchjson runs the kernel benchmarks with -benchmem and writes
// the parsed results as a BENCH_<n>.json trajectory file in the repo root,
// so successive optimization PRs leave a machine-readable record of where
// the codec hot paths stood before and after each change.
//
// Usage:
//
//	go run ./cmd/benchjson                     # next free BENCH_<n>.json
//	go run ./cmd/benchjson -out BENCH_0.json   # explicit slot
//	go run ./cmd/benchjson -bench 'RS' -label "post-chien"
//	go run ./cmd/benchjson -compare BENCH_2.json -threshold 2
//
// The default -bench regex covers the arithmetic/codec kernels (GF256,
// RS and RSBatch, Expandable, Hamming, SchemeEncodeDecode and
// SchemeBatchDecode) and deliberately excludes the minutes-long figure
// benchmarks (F1..F12, T1..T4) and Memsim.
//
// With -compare the run becomes a regression gate instead of a recorder:
// results are checked against the baseline file and the exit code is
// nonzero if any benchmark got slower than threshold x its baseline
// ns/op, allocates more than its baseline allocs/op, or disappeared from
// the run entirely (a stale baseline must be regenerated, not ignored).
// No file is written in compare mode unless -out is given explicitly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"

	"pair/internal/faults"
	"pair/internal/memsim"
	"pair/internal/schemes"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
	ReqPerS     float64 `json:"req_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// File is the BENCH_<n>.json payload.
type File struct {
	Label      string   `json:"label,omitempty"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Bench      string   `json:"bench_regex"`
	Packages   []string `json:"packages"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8  1000  123 ns/op [... MB/s] [B/op allocs/op]`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// runGoTest invokes `go <args>` and returns its stdout. It is a package
// variable so tests can substitute canned benchmark output instead of
// spending minutes in real benchmark runs.
var runGoTest = func(args []string, stderr io.Writer) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Stderr = stderr
	return cmd.Output()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, runs the benchmarks
// through runGoTest and writes the BENCH_<n>.json file, returning the
// exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "^Benchmark(GF256|RS|Expandable|Hamming|SchemeEncodeDecode|SchemeBatchDecode|SimThroughput)", "benchmark regex passed to go test -bench")
	pkg := fs.String("pkg", ".", "comma-separated packages to benchmark")
	out := fs.String("out", "", "output path (default: next free BENCH_<n>.json in repo root)")
	label := fs.String("label", "", "free-form label recorded in the file")
	benchtime := fs.String("benchtime", "", "value for go test -benchtime")
	count := fs.Int("count", 1, "value for go test -count")
	compare := fs.String("compare", "", "baseline BENCH_<n>.json: gate this run against it instead of recording")
	threshold := fs.Float64("threshold", 2.0, "with -compare, fail when ns/op exceeds threshold x the baseline")
	listSchs := fs.Bool("list-schemes", false, "list the scheme registry behind the Scheme* benchmarks, then exit")
	listFaults := fs.Bool("list-faults", false, "list the fault-scenario registry behind the campaign benchmarks, then exit")
	listProfs := fs.Bool("list-profiles", false, "list the memory-profile registry behind the simulator benchmarks, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listSchs {
		fmt.Fprint(stdout, schemes.ListText())
		return 0
	}
	if *listFaults {
		fmt.Fprint(stdout, faults.ListFaultsText())
		return 0
	}
	if *listProfs {
		fmt.Fprint(stdout, memsim.ListProfilesText())
		return 0
	}

	pkgs := strings.Split(*pkg, ",")
	goArgs := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		goArgs = append(goArgs, "-benchtime", *benchtime)
	}
	goArgs = append(goArgs, pkgs...)

	raw, err := runGoTest(goArgs, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: go %s: %v\n", strings.Join(goArgs, " "), err)
		return 1
	}

	results := parse(string(raw))
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines parsed")
		return 1
	}

	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		var base File
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(stderr, "benchjson: parse %s: %v\n", *compare, err)
			return 1
		}
		if n := regressions(base.Benchmarks, results, *threshold, stdout); n > 0 {
			fmt.Fprintf(stderr, "benchjson: %d regression(s) vs %s\n", n, *compare)
			return 1
		}
		fmt.Fprintf(stdout, "no regressions vs %s (threshold %.2gx)\n", *compare, *threshold)
		if *out == "" {
			return 0
		}
	}

	path := *out
	if path == "" {
		path = nextSlot(".")
	}
	f := File{
		Label:      *label,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Bench:      *bench,
		Packages:   pkgs,
		Benchmarks: results,
	}
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: marshal: %v\n", err)
		return 1
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: write %s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s (%d benchmarks)\n", path, len(results))
	return 0
}

// parse extracts benchmark results from `go test -bench` output. Averages
// are taken when -count > 1 repeats a name.
func parse(out string) []Result {
	type agg struct {
		r Result
		n int
	}
	order := []string{}
	byName := map[string]*agg{}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := Result{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "MB/s":
				r.MBPerS = v
			case "req/s":
				r.ReqPerS = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		a, ok := byName[r.Name]
		if !ok {
			byName[r.Name] = &agg{r: r, n: 1}
			order = append(order, r.Name)
			continue
		}
		a.r.Iterations += r.Iterations
		a.r.NsPerOp += r.NsPerOp
		a.r.MBPerS += r.MBPerS
		a.r.ReqPerS += r.ReqPerS
		a.r.BytesPerOp += r.BytesPerOp
		a.r.AllocsPerOp += r.AllocsPerOp
		a.n++
	}
	results := make([]Result, 0, len(order))
	for _, name := range order {
		a := byName[name]
		r := a.r
		if a.n > 1 {
			r.Iterations /= int64(a.n)
			r.NsPerOp /= float64(a.n)
			r.MBPerS /= float64(a.n)
			r.ReqPerS /= float64(a.n)
			r.BytesPerOp /= int64(a.n)
			r.AllocsPerOp /= int64(a.n)
		}
		results = append(results, r)
	}
	return results
}

// regressions compares the current results against a baseline, prints one
// verdict line per baseline benchmark, and returns the number of
// failures. A benchmark fails by getting slower than threshold x its
// baseline ns/op, by allocating more than its baseline allocs/op, or by
// vanishing from the run (stale baselines must be regenerated, not
// silently skipped). Benchmarks the baseline does not know are reported
// but never fail — recording them is the next BENCH_<n> snapshot's job.
func regressions(base, cur []Result, threshold float64, w io.Writer) int {
	curByName := make(map[string]Result, len(cur))
	for _, r := range cur {
		curByName[r.Name] = r
	}
	failures := 0
	for _, b := range base {
		c, ok := curByName[b.Name]
		if !ok {
			fmt.Fprintf(w, "MISSING %s: in baseline but not in this run\n", b.Name)
			failures++
			continue
		}
		delete(curByName, b.Name)
		ratio := 0.0
		if b.NsPerOp > 0 {
			ratio = c.NsPerOp / b.NsPerOp
		}
		switch {
		case ratio > threshold:
			fmt.Fprintf(w, "FAIL    %s: %.4g ns/op vs %.4g baseline (%.2fx > %.2gx)\n",
				b.Name, c.NsPerOp, b.NsPerOp, ratio, threshold)
			failures++
		case c.AllocsPerOp > b.AllocsPerOp:
			fmt.Fprintf(w, "FAIL    %s: %d allocs/op vs %d baseline\n",
				b.Name, c.AllocsPerOp, b.AllocsPerOp)
			failures++
		default:
			fmt.Fprintf(w, "ok      %s: %.4g ns/op (%.2fx of baseline), %d allocs/op\n",
				b.Name, c.NsPerOp, ratio, c.AllocsPerOp)
		}
	}
	for _, r := range cur {
		if _, seen := curByName[r.Name]; seen {
			fmt.Fprintf(w, "new     %s: %.4g ns/op (no baseline)\n", r.Name, r.NsPerOp)
		}
	}
	return failures
}

// nextSlot returns the first BENCH_<n>.json path that does not exist yet.
func nextSlot(dir string) string {
	for n := 0; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}
