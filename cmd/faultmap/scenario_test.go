package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pair/internal/faults"
)

var update = flag.Bool("update", false, "rewrite the scenario golden files")

// TestScenarioMapGoldens renders one scenario map per registered fault
// scenario at a fixed seed and compares it byte-for-byte against the
// checked-in golden files. The goldens pin both the renderer and each
// scenario's RNG draw order: any change to either shows up as a diff
// here before it silently re-seeds a published campaign. Regenerate
// deliberately with: go test ./cmd/faultmap -run ScenarioMapGoldens -update
func TestScenarioMapGoldens(t *testing.T) {
	for _, id := range faults.ScenarioIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			code, out, stderr := runCLI(t, "-faults", id, "-seed", "7")
			if code != 0 {
				t.Fatalf("exit %d, stderr %q", code, stderr)
			}
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if out != string(want) {
				t.Fatalf("scenario map for %q diverged from golden %s\n--- got ---\n%s--- want ---\n%s",
					id, path, out, want)
			}
		})
	}
}

// TestScenarioMapStructure checks invariants no golden can pin: every
// chip of the rank is accounted for (rendered or reported clean) and the
// verdict lines quote the worst chip.
func TestScenarioMapStructure(t *testing.T) {
	code, out, stderr := runCLI(t, "-faults", "compose(pin,vrt:flicker=1)", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"chip 0", "chip 1", "chip 2", "chip 3", "worst chip:", "correctable:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("scenario map missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `scenario "compose(pin,vrt:flicker=1)"`) {
		t.Fatalf("header must quote the canonical spec:\n%s", out)
	}
}

// TestScenarioMapRejectsBadSpec: a malformed -faults spec is a clean
// error, not a panic or a silent fallback to -fault mode.
func TestScenarioMapRejectsBadSpec(t *testing.T) {
	code, _, stderr := runCLI(t, "-faults", "nosuch:k=v")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Fatalf("stderr must name the unknown scenario: %q", stderr)
	}
}

// TestListFaults: -list-faults prints the registry listing and exits 0.
func TestListFaults(t *testing.T) {
	code, out, _ := runCLI(t, "-list-faults")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if out != faults.ListFaultsText() {
		t.Fatal("-list-faults must print faults.ListFaultsText() verbatim")
	}
}
