package main

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

var symLine = regexp.MustCompile(`PAIR \(pin-aligned\) = (\d+)\s+DUO \(beat-aligned\) = (\d+)`)
var flipLine = regexp.MustCompile(`\((\d+) bits flipped\)`)

// parseMap extracts (flips, pairSyms, duoSyms) from the rendered output.
func parseMap(t *testing.T, out string) (flips, pair, duo int) {
	t.Helper()
	fm := flipLine.FindStringSubmatch(out)
	sm := symLine.FindStringSubmatch(out)
	if fm == nil || sm == nil {
		t.Fatalf("summary lines missing:\n%s", out)
	}
	flips, _ = strconv.Atoi(fm[1])
	pair, _ = strconv.Atoi(sm[1])
	duo, _ = strconv.Atoi(sm[2])
	return flips, pair, duo
}

func TestPinFaultCorruptsOnePairSymbol(t *testing.T) {
	code, out, stderr := runCLI(t, "-fault", "pin", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	flips, pair, duo := parseMap(t, out)
	// A faulty pin stays inside one pin-aligned symbol no matter how many
	// beats it corrupts, while every corrupted beat is its own DUO symbol.
	if pair != 1 {
		t.Fatalf("pin fault touched %d PAIR symbols, want 1:\n%s", pair, out)
	}
	if flips < 1 || duo != flips {
		t.Fatalf("pin fault flipped %d bits across %d DUO symbols, want equal:\n%s", flips, duo, out)
	}
	if !strings.Contains(out, "PAIR t=2: true") {
		t.Fatalf("one symbol must be PAIR-correctable:\n%s", out)
	}
	if strings.Count(out, "DQ") != 16 {
		t.Fatalf("grid must show 16 pins:\n%s", out)
	}
}

func TestBeatFaultIsTheDual(t *testing.T) {
	code, out, _ := runCLI(t, "-fault", "beat", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	flips, pair, duo := parseMap(t, out)
	// One corrupted beat: every flipped pin is its own PAIR symbol, but
	// DUO confines the damage to at most pins/8 byte symbols.
	if flips < 1 || pair != flips {
		t.Fatalf("beat fault flipped %d bits across %d PAIR symbols, want equal:\n%s", flips, pair, out)
	}
	if duo < 1 || duo > 2 {
		t.Fatalf("beat fault touched %d DUO symbols, want 1..2:\n%s", duo, out)
	}
}

func TestCellFaultFlipsOneBit(t *testing.T) {
	code, out, _ := runCLI(t, "-fault", "cell", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "(1 bits flipped)") {
		t.Fatalf("cell fault flip count wrong:\n%s", out)
	}
	m := symLine.FindStringSubmatch(out)
	if m == nil || m[1] != "1" || m[2] != "1" {
		t.Fatalf("single cell must touch one symbol on both alignments: %v", m)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	_, a, _ := runCLI(t, "-fault", "pin-burst", "-len", "4", "-seed", "7")
	_, b, _ := runCLI(t, "-fault", "pin-burst", "-len", "4", "-seed", "7")
	if a != b {
		t.Fatal("same seed produced different maps")
	}
}

func TestUnknownFault(t *testing.T) {
	code, _, stderr := runCLI(t, "-fault", "gamma-ray")
	if code != 1 || !strings.Contains(stderr, "unknown fault") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestBadFlag(t *testing.T) {
	code, _, _ := runCLI(t, "-nope")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestSchemeSpecSelectsOrganization maps a pin fault on the DDR5 BL16
// organization picked purely by spec: the grid doubles in depth and a
// pin fault now spans two pin-aligned symbols, needing the t=2 code.
func TestSchemeSpecSelectsOrganization(t *testing.T) {
	code, out, stderr := runCLI(t, "-scheme", "pair@ddr5x16", "-fault", "pin", "-seed", "1")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "x16 BL16") {
		t.Fatalf("DDR5 organization not shown:\n%s", out)
	}
	_, pair, _ := parseMap(t, out)
	if pair != 2 {
		t.Fatalf("BL16 pin fault touched %d pin-aligned symbols, want 2:\n%s", pair, out)
	}
	if !strings.Contains(out, "PAIR t=2: true") {
		t.Fatalf("expanded code must still correct its aligned axis:\n%s", out)
	}
}

func TestBadSchemeSpec(t *testing.T) {
	code, _, stderr := runCLI(t, "-scheme", "quantum")
	if code != 1 || !strings.Contains(stderr, "unknown scheme") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestListSchemes(t *testing.T) {
	code, out, _ := runCLI(t, "-list-schemes")
	if code != 0 || !strings.Contains(out, "name[@org][:key=val,...]") {
		t.Fatalf("exit %d, out:\n%s", code, out)
	}
}

func TestListProfiles(t *testing.T) {
	code, out, _ := runCLI(t, "-list-profiles")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "lpddr5-6400") || !strings.Contains(out, "policy") {
		t.Fatalf("-list-profiles output wrong:\n%s", out)
	}
}
