// Command faultmap visualizes how one physical fault maps onto ECC
// codeword symbols under each scheme's symbolization — the intuition
// behind PAIR in one terminal screen. For a chosen fault pattern it
// prints the chip access as a pins x beats grid with corrupted bits
// marked, then shows which pin-aligned symbols (PAIR) and beat-aligned
// symbols (DUO) the pattern touches.
//
// Usage:
//
//	faultmap -fault pin
//	faultmap -fault pin-burst -len 4
//	faultmap -fault cell -seed 3
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"pair/internal/dram"
	"pair/internal/faults"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args and renders the fault
// map to stdout, returning the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind = fs.String("fault", "pin", "cell|pin|lane|beat|word|pin-burst|beat-burst")
		blen = fs.Int("len", 4, "burst length for *-burst faults")
		seed = fs.Int64("seed", 1, "RNG seed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	org := dram.DDR4x16()
	mask := dram.NewBurst(org.Pins, org.BurstLen)
	rng := rand.New(rand.NewSource(*seed))

	var flips int
	switch *kind {
	case "cell":
		flips = faults.InjectNCells(rng, mask, 1)
	case "pin":
		flips = faults.InjectPin(rng, mask)
	case "lane":
		flips = faults.InjectLane(rng, mask)
	case "beat":
		flips = faults.InjectBeat(rng, mask)
	case "word":
		flips = faults.InjectWord(rng, mask)
	case "pin-burst":
		flips = faults.InjectPinBurst(rng, mask, *blen)
	case "beat-burst":
		flips = faults.InjectBeatBurst(rng, mask, *blen)
	default:
		fmt.Fprintf(stderr, "faultmap: unknown fault %q\n", *kind)
		return 1
	}

	fmt.Fprintf(stdout, "fault %q on a x%d BL%d chip access (%d bits flipped)\n\n", *kind, org.Pins, org.BurstLen, flips)
	fmt.Fprintln(stdout, "        beats 0..7        PAIR symbol (pin-aligned)")
	for pin := 0; pin < org.Pins; pin++ {
		var row strings.Builder
		touched := false
		for beat := 0; beat < org.BurstLen; beat++ {
			if mask.Get(pin, beat) {
				row.WriteByte('X')
				touched = true
			} else {
				row.WriteByte('.')
			}
		}
		marker := ""
		if touched {
			marker = fmt.Sprintf("  <- symbol %d corrupted", pin)
		}
		fmt.Fprintf(stdout, "DQ%-2d    %s%s\n", pin, row.String(), marker)
	}

	pairSyms := 0
	for pin := 0; pin < org.Pins; pin++ {
		if mask.PinSymbol(pin) != 0 {
			pairSyms++
		}
	}
	duoSyms := 0
	for beat := 0; beat < org.BurstLen; beat++ {
		for g := 0; g < org.Pins/8; g++ {
			if mask.BeatByte(beat, g) != 0 {
				duoSyms++
			}
		}
	}
	fmt.Fprintf(stdout, "\nsymbols corrupted:  PAIR (pin-aligned) = %d   DUO (beat-aligned) = %d\n", pairSyms, duoSyms)
	fmt.Fprintf(stdout, "correctable:        PAIR t=2: %-5v        DUO t=1: %v\n", pairSyms <= 2, duoSyms <= 1)
	return 0
}
