// Command faultmap visualizes how one physical fault maps onto ECC
// codeword symbols under each scheme's symbolization — the intuition
// behind PAIR in one terminal screen. For a chosen fault pattern it
// prints the chip access as a pins x beats grid with corrupted bits
// marked, then shows which pin-aligned symbols (PAIR) and beat-aligned
// symbols (DUO) the pattern touches.
//
// Usage:
//
//	faultmap -fault pin
//	faultmap -fault pin-burst -len 4
//	faultmap -fault cell -seed 3
//	faultmap -scheme pair@ddr5x16 -fault pin    # BL16 grid, expanded code
//
// The -scheme spec (name[@org][:key=val,...], see -list-schemes) selects
// the organization whose chip-access geometry the grid shows and, for
// PAIR schemes, the correction budget t quoted in the verdict line.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"pair/internal/core"
	"pair/internal/dram"
	"pair/internal/faults"
	"pair/internal/schemes"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args and renders the fault
// map to stdout, returning the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind     = fs.String("fault", "pin", "cell|pin|lane|beat|word|pin-burst|beat-burst")
		blen     = fs.Int("len", 4, "burst length for *-burst faults")
		seed     = fs.Int64("seed", 1, "RNG seed")
		spec     = fs.String("scheme", "pair", "scheme spec, name[@org][:key=val,...], selecting the organization shown")
		listSchs = fs.Bool("list-schemes", false, "list registered schemes, spec grammar, organizations and sets, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listSchs {
		fmt.Fprint(stdout, schemes.ListText())
		return 0
	}

	scheme, err := schemes.New(*spec)
	if err != nil {
		fmt.Fprintln(stderr, "faultmap:", err)
		return 1
	}
	org := scheme.Org()
	pairT := 2
	if ps, ok := scheme.(*core.Scheme); ok {
		pairT = ps.T()
	}
	mask := dram.NewBurst(org.Pins, org.BurstLen)
	rng := rand.New(rand.NewSource(*seed))

	var flips int
	switch *kind {
	case "cell":
		flips = faults.InjectNCells(rng, mask, 1)
	case "pin":
		flips = faults.InjectPin(rng, mask)
	case "lane":
		flips = faults.InjectLane(rng, mask)
	case "beat":
		flips = faults.InjectBeat(rng, mask)
	case "word":
		flips = faults.InjectWord(rng, mask)
	case "pin-burst":
		flips = faults.InjectPinBurst(rng, mask, *blen)
	case "beat-burst":
		flips = faults.InjectBeatBurst(rng, mask, *blen)
	default:
		fmt.Fprintf(stderr, "faultmap: unknown fault %q\n", *kind)
		return 1
	}

	fmt.Fprintf(stdout, "fault %q on a x%d BL%d chip access (%d bits flipped)\n\n", *kind, org.Pins, org.BurstLen, flips)
	fmt.Fprintf(stdout, "        beats 0..%-2d       PAIR symbol (pin-aligned)\n", org.BurstLen-1)
	for pin := 0; pin < org.Pins; pin++ {
		var row strings.Builder
		touched := false
		for beat := 0; beat < org.BurstLen; beat++ {
			if mask.Get(pin, beat) {
				row.WriteByte('X')
				touched = true
			} else {
				row.WriteByte('.')
			}
		}
		marker := ""
		if touched {
			marker = fmt.Sprintf("  <- symbol %d corrupted", pin)
		}
		fmt.Fprintf(stdout, "DQ%-2d    %s%s\n", pin, row.String(), marker)
	}

	// A BL16 pin carries BurstLen/8 symbols, so count per part — a pin
	// fault on DDR5 touches two pin-aligned symbols, not one.
	pairSyms := 0
	for pin := 0; pin < org.Pins; pin++ {
		for part := 0; part < org.BurstLen/8; part++ {
			if mask.PinSymbolPart(pin, part) != 0 {
				pairSyms++
			}
		}
	}
	duoSyms := 0
	for beat := 0; beat < org.BurstLen; beat++ {
		for g := 0; g < org.Pins/8; g++ {
			if mask.BeatByte(beat, g) != 0 {
				duoSyms++
			}
		}
	}
	fmt.Fprintf(stdout, "\nsymbols corrupted:  PAIR (pin-aligned) = %d   DUO (beat-aligned) = %d\n", pairSyms, duoSyms)
	fmt.Fprintf(stdout, "correctable:        PAIR t=%d: %-5v        DUO t=1: %v\n", pairT, pairSyms <= pairT, duoSyms <= 1)
	return 0
}
