// Command faultmap visualizes how one physical fault maps onto ECC
// codeword symbols under each scheme's symbolization — the intuition
// behind PAIR in one terminal screen. For a chosen fault pattern it
// prints the chip access as a pins x beats grid with corrupted bits
// marked, then shows which pin-aligned symbols (PAIR) and beat-aligned
// symbols (DUO) the pattern touches.
//
// Usage:
//
//	faultmap -fault pin
//	faultmap -fault pin-burst -len 4
//	faultmap -fault cell -seed 3
//	faultmap -scheme pair@ddr5x16 -fault pin    # BL16 grid, expanded code
//	faultmap -faults retention:pop=0.02        # rank-wide scenario map
//	faultmap -list-faults                      # registered scenarios
//
// The -scheme spec (name[@org][:key=val,...], see -list-schemes) selects
// the organization whose chip-access geometry the grid shows and, for
// PAIR schemes, the correction budget t quoted in the verdict line.
//
// With -faults, the single-chip -fault mode is replaced by a rank-wide
// scenario map: the registered fault scenario (see -list-faults) corrupts
// one access of every chip in the rank, each chip's data burst is
// rendered (or reported clean), and the verdict quotes the worst chip —
// per-chip-access codes live or die on their single worst chip.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"pair/internal/core"
	"pair/internal/dram"
	"pair/internal/faults"
	"pair/internal/memsim"
	"pair/internal/schemes"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args and renders the fault
// map to stdout, returning the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind     = fs.String("fault", "pin", "cell|pin|lane|beat|word|pin-burst|beat-burst")
		blen     = fs.Int("len", 4, "burst length for *-burst faults")
		seed     = fs.Int64("seed", 1, "RNG seed")
		spec       = fs.String("scheme", "pair", "scheme spec, name[@org][:key=val,...], selecting the organization shown")
		listSchs   = fs.Bool("list-schemes", false, "list registered schemes, spec grammar, organizations and sets, then exit")
		scenario   = fs.String("faults", "", "fault scenario spec (name[:key=val,...] or compose(...)): render a rank-wide scenario map instead of a single-chip -fault")
		listFaults = fs.Bool("list-faults", false, "list registered fault scenarios, the spec grammar and options, then exit")
		listProfs  = fs.Bool("list-profiles", false, "list registered memory profiles (the timing simulator's -profile specs), then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listSchs {
		fmt.Fprint(stdout, schemes.ListText())
		return 0
	}
	if *listFaults {
		fmt.Fprint(stdout, faults.ListFaultsText())
		return 0
	}
	if *listProfs {
		fmt.Fprint(stdout, memsim.ListProfilesText())
		return 0
	}

	scheme, err := schemes.New(*spec)
	if err != nil {
		fmt.Fprintln(stderr, "faultmap:", err)
		return 1
	}
	org := scheme.Org()
	pairT := 2
	if ps, ok := scheme.(*core.Scheme); ok {
		pairT = ps.T()
	}
	rng := rand.New(rand.NewSource(*seed))

	if *scenario != "" {
		sc, err := faults.NewScenario(*scenario)
		if err != nil {
			fmt.Fprintln(stderr, "faultmap:", err)
			return 1
		}
		return runScenarioMap(stdout, sc, org, pairT, rng)
	}

	mask := dram.NewBurst(org.Pins, org.BurstLen)

	var flips int
	switch *kind {
	case "cell":
		flips = faults.InjectNCells(rng, mask, 1)
	case "pin":
		flips = faults.InjectPin(rng, mask)
	case "lane":
		flips = faults.InjectLane(rng, mask)
	case "beat":
		flips = faults.InjectBeat(rng, mask)
	case "word":
		flips = faults.InjectWord(rng, mask)
	case "pin-burst":
		flips = faults.InjectPinBurst(rng, mask, *blen)
	case "beat-burst":
		flips = faults.InjectBeatBurst(rng, mask, *blen)
	default:
		fmt.Fprintf(stderr, "faultmap: unknown fault %q\n", *kind)
		return 1
	}

	fmt.Fprintf(stdout, "fault %q on a x%d BL%d chip access (%d bits flipped)\n\n", *kind, org.Pins, org.BurstLen, flips)
	fmt.Fprintf(stdout, "        beats 0..%-2d       PAIR symbol (pin-aligned)\n", org.BurstLen-1)
	renderGrid(stdout, mask, org)

	pairSyms, duoSyms := countSyms(mask, org)
	fmt.Fprintf(stdout, "\nsymbols corrupted:  PAIR (pin-aligned) = %d   DUO (beat-aligned) = %d\n", pairSyms, duoSyms)
	fmt.Fprintf(stdout, "correctable:        PAIR t=%d: %-5v        DUO t=1: %v\n", pairT, pairSyms <= pairT, duoSyms <= 1)
	return 0
}

// renderGrid prints the pins x beats corruption grid of one chip access.
func renderGrid(w io.Writer, mask *dram.Burst, org dram.Organization) {
	for pin := 0; pin < org.Pins; pin++ {
		var row strings.Builder
		touched := false
		for beat := 0; beat < org.BurstLen; beat++ {
			if mask.Get(pin, beat) {
				row.WriteByte('X')
				touched = true
			} else {
				row.WriteByte('.')
			}
		}
		marker := ""
		if touched {
			marker = fmt.Sprintf("  <- symbol %d corrupted", pin)
		}
		fmt.Fprintf(w, "DQ%-2d    %s%s\n", pin, row.String(), marker)
	}
}

// countSyms counts the corrupted pin-aligned (PAIR) and beat-aligned
// (DUO) symbols of one chip-access mask. A BL16 pin carries BurstLen/8
// symbols, so PAIR counts per part — a pin fault on DDR5 touches two
// pin-aligned symbols, not one.
func countSyms(mask *dram.Burst, org dram.Organization) (pairSyms, duoSyms int) {
	for pin := 0; pin < org.Pins; pin++ {
		for part := 0; part < org.BurstLen/8; part++ {
			if mask.PinSymbolPart(pin, part) != 0 {
				pairSyms++
			}
		}
	}
	for beat := 0; beat < org.BurstLen; beat++ {
		for g := 0; g < org.Pins/8; g++ {
			if mask.BeatByte(beat, g) != 0 {
				duoSyms++
			}
		}
	}
	return pairSyms, duoSyms
}

// runScenarioMap renders a registered fault scenario across one access of
// every chip in the rank. Each chip exposes only its data burst — the
// shared chip-access geometry every scheme symbolizes — so the map shows
// the fault physics, not one scheme's redundancy layout. The verdict
// quotes the worst corrupted chip: per-chip-access codes decode each chip
// independently, so the rank survives only if its worst chip does.
func runScenarioMap(stdout io.Writer, sc faults.Scenario, org dram.Organization, pairT int, rng *rand.Rand) int {
	access := make([]faults.ChipAccess, org.ChipsPerRank)
	for i := range access {
		access[i] = faults.ChipAccess{Data: dram.NewBurst(org.Pins, org.BurstLen)}
	}
	flips := sc.Inject(rng, access)
	fmt.Fprintf(stdout, "scenario %q on a %d-chip x%d BL%d rank access (%d bits flipped)\n",
		sc.Spec(), org.ChipsPerRank, org.Pins, org.BurstLen, flips)

	worstPair, worstDuo := 0, 0
	for i := range access {
		mask := access[i].Data
		if mask.PopCount() == 0 {
			fmt.Fprintf(stdout, "\nchip %d: clean\n", i)
			continue
		}
		fmt.Fprintf(stdout, "\nchip %d:\n", i)
		fmt.Fprintf(stdout, "        beats 0..%-2d       PAIR symbol (pin-aligned)\n", org.BurstLen-1)
		renderGrid(stdout, mask, org)
		pairSyms, duoSyms := countSyms(mask, org)
		fmt.Fprintf(stdout, "symbols corrupted:  PAIR (pin-aligned) = %d   DUO (beat-aligned) = %d\n", pairSyms, duoSyms)
		if pairSyms > worstPair {
			worstPair = pairSyms
		}
		if duoSyms > worstDuo {
			worstDuo = duoSyms
		}
	}
	fmt.Fprintf(stdout, "\nworst chip:         PAIR (pin-aligned) = %d   DUO (beat-aligned) = %d\n", worstPair, worstDuo)
	fmt.Fprintf(stdout, "correctable:        PAIR t=%d: %-5v        DUO t=1: %v\n", pairT, worstPair <= pairT, worstDuo <= 1)
	return 0
}
