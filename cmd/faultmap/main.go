// Command faultmap visualizes how one physical fault maps onto ECC
// codeword symbols under each scheme's symbolization — the intuition
// behind PAIR in one terminal screen. For a chosen fault pattern it
// prints the chip access as a pins x beats grid with corrupted bits
// marked, then shows which pin-aligned symbols (PAIR) and beat-aligned
// symbols (DUO) the pattern touches.
//
// Usage:
//
//	faultmap -fault pin
//	faultmap -fault pin-burst -len 4
//	faultmap -fault cell -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"pair/internal/dram"
	"pair/internal/faults"
)

func main() {
	var (
		kind = flag.String("fault", "pin", "cell|pin|lane|beat|word|pin-burst|beat-burst")
		blen = flag.Int("len", 4, "burst length for *-burst faults")
		seed = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	org := dram.DDR4x16()
	mask := dram.NewBurst(org.Pins, org.BurstLen)
	rng := rand.New(rand.NewSource(*seed))

	var flips int
	switch *kind {
	case "cell":
		flips = faults.InjectNCells(rng, mask, 1)
	case "pin":
		flips = faults.InjectPin(rng, mask)
	case "lane":
		flips = faults.InjectLane(rng, mask)
	case "beat":
		flips = faults.InjectBeat(rng, mask)
	case "word":
		flips = faults.InjectWord(rng, mask)
	case "pin-burst":
		flips = faults.InjectPinBurst(rng, mask, *blen)
	case "beat-burst":
		flips = faults.InjectBeatBurst(rng, mask, *blen)
	default:
		fmt.Fprintf(os.Stderr, "faultmap: unknown fault %q\n", *kind)
		os.Exit(1)
	}

	fmt.Printf("fault %q on a x%d BL%d chip access (%d bits flipped)\n\n", *kind, org.Pins, org.BurstLen, flips)
	fmt.Println("        beats 0..7        PAIR symbol (pin-aligned)")
	for pin := 0; pin < org.Pins; pin++ {
		var row strings.Builder
		touched := false
		for beat := 0; beat < org.BurstLen; beat++ {
			if mask.Get(pin, beat) {
				row.WriteByte('X')
				touched = true
			} else {
				row.WriteByte('.')
			}
		}
		marker := ""
		if touched {
			marker = fmt.Sprintf("  <- symbol %d corrupted", pin)
		}
		fmt.Printf("DQ%-2d    %s%s\n", pin, row.String(), marker)
	}

	pairSyms := 0
	for pin := 0; pin < org.Pins; pin++ {
		if mask.PinSymbol(pin) != 0 {
			pairSyms++
		}
	}
	duoSyms := 0
	for beat := 0; beat < org.BurstLen; beat++ {
		for g := 0; g < org.Pins/8; g++ {
			if mask.BeatByte(beat, g) != 0 {
				duoSyms++
			}
		}
	}
	fmt.Printf("\nsymbols corrupted:  PAIR (pin-aligned) = %d   DUO (beat-aligned) = %d\n", pairSyms, duoSyms)
	fmt.Printf("correctable:        PAIR t=2: %-5v        DUO t=1: %v\n", pairSyms <= 2, duoSyms <= 1)
}
