// Command memrun replays a trace file (tracegen's format, or any
// `R|W|M <hex-line> <gap>` stream) through the DDR4 timing simulator
// under a chosen ECC scheme's cost model and prints the run summary.
//
// Usage:
//
//	tracegen -name mix -reads 0.6 > mix.trace
//	memrun -scheme pair mix.trace
//	memrun -scheme xed -compare none mix.trace     # with a baseline column
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pair"
	"pair/internal/memsim"
	"pair/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, replays the trace and
// prints the summary table to stdout, returning the exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		schemeName = fs.String("scheme", "pair", "ECC scheme (none|iecc|xed|duo|duo-rank|pair-base|pair|secded)")
		compare    = fs.String("compare", "", "optional second scheme to compare against")
		ranks      = fs.Int("ranks", 1, "ranks per channel")
		window     = fs.Int("window", 0, "override the trace's MLP window")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: memrun [flags] <trace-file>  (use - for stdin)")
		return 2
	}

	wl, err := loadTrace(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintln(stderr, "memrun:", err)
		return 1
	}
	if *window > 0 {
		wl.Window = *window
	}
	s := wl.Stats()
	fmt.Fprintf(stdout, "trace %s: %d reads, %d writes (%d masked), window %d\n\n",
		wl.Name, s.Reads, s.Writes+s.MaskedWrites, s.MaskedWrites, wl.Window)
	fmt.Fprintf(stdout, "%-10s %12s %12s %11s %11s %12s\n",
		"scheme", "cycles", "exec ms", "extra rds", "extra wrs", "read lat ns")

	names := []string{*schemeName}
	if *compare != "" {
		names = append(names, *compare)
	}
	for _, n := range names {
		scheme, err := pair.SchemeByName(n)
		if err != nil {
			fmt.Fprintln(stderr, "memrun:", err)
			return 1
		}
		cfg := memsim.DefaultConfig()
		cfg.Org = scheme.Org()
		cfg.Ranks = *ranks
		cfg.Cost = scheme.Cost()
		res := memsim.Run(cfg, wl)
		fmt.Fprintf(stdout, "%-10s %12d %12.3f %11d %11d %12.1f\n",
			scheme.Name(), res.Cycles, res.ExecSeconds(cfg.Timing)*1e3,
			res.ExtraReads, res.ExtraWrites, res.AvgReadLatencyNS(cfg.Timing))
	}
	return 0
}

func loadTrace(path string, stdin io.Reader) (trace.Workload, error) {
	if path == "-" {
		return trace.Parse(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return trace.Workload{}, err
	}
	defer f.Close()
	return trace.Parse(f)
}
