// Command memrun replays a trace file (tracegen's format, or any
// `R|W|M <hex-line> <gap>` stream) through the DDR4 timing simulator
// under a chosen ECC scheme's cost model and prints the run summary.
//
// Usage:
//
//	tracegen -name mix -reads 0.6 > mix.trace
//	memrun -scheme pair mix.trace
//	memrun -scheme xed -compare none mix.trace     # with a baseline column
package main

import (
	"flag"
	"fmt"
	"os"

	"pair"
	"pair/internal/memsim"
	"pair/internal/trace"
)

func main() {
	var (
		schemeName = flag.String("scheme", "pair", "ECC scheme (none|iecc|xed|duo|duo-rank|pair-base|pair|secded)")
		compare    = flag.String("compare", "", "optional second scheme to compare against")
		ranks      = flag.Int("ranks", 1, "ranks per channel")
		window     = flag.Int("window", 0, "override the trace's MLP window")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: memrun [flags] <trace-file>  (use - for stdin)")
		os.Exit(2)
	}

	wl, err := loadTrace(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *window > 0 {
		wl.Window = *window
	}
	s := wl.Stats()
	fmt.Printf("trace %s: %d reads, %d writes (%d masked), window %d\n\n",
		wl.Name, s.Reads, s.Writes+s.MaskedWrites, s.MaskedWrites, wl.Window)
	fmt.Printf("%-10s %12s %12s %11s %11s %12s\n",
		"scheme", "cycles", "exec ms", "extra rds", "extra wrs", "read lat ns")

	names := []string{*schemeName}
	if *compare != "" {
		names = append(names, *compare)
	}
	for _, n := range names {
		scheme, err := pair.SchemeByName(n)
		if err != nil {
			fatal(err)
		}
		cfg := memsim.DefaultConfig()
		cfg.Org = scheme.Org()
		cfg.Ranks = *ranks
		cfg.Cost = scheme.Cost()
		res := memsim.Run(cfg, wl)
		fmt.Printf("%-10s %12d %12.3f %11d %11d %12.1f\n",
			scheme.Name(), res.Cycles, res.ExecSeconds(cfg.Timing)*1e3,
			res.ExtraReads, res.ExtraWrites, res.AvgReadLatencyNS(cfg.Timing))
	}
}

func loadTrace(path string) (trace.Workload, error) {
	if path == "-" {
		return trace.Parse(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return trace.Workload{}, err
	}
	defer f.Close()
	return trace.Parse(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "memrun:", err)
	os.Exit(1)
}
