// Command memrun replays a trace file (tracegen's format, or any
// `R|W|M <hex-line> <gap>` stream) through the DDR4 timing simulator
// under a chosen ECC scheme's cost model and prints the run summary.
//
// Usage:
//
//	tracegen -name mix -reads 0.6 > mix.trace
//	memrun -scheme pair mix.trace
//	memrun -scheme xed -compare none mix.trace     # with a baseline column
//	memrun -scheme pair@ddr5x16 mix.trace          # full spec grammar
//	memrun -scheme pair:spare=3.7 mix.trace        # spared-PAIR by spec
//	memrun -scheme pair -check mix.trace           # JEDEC protocol audit
//	memrun -scheme pair -cmdtrace - mix.trace      # DRAM command stream
//	memrun -scheme pair -profile ddr5-4800 mix.trace  # DDR5 memory system
//
// -scheme and -compare take registry specs, name[@org][:key=val,...];
// -list-schemes prints the registered schemes, organizations and sets.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pair"
	"pair/internal/memsim"
	"pair/internal/memsim/check"
	"pair/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, replays the trace and
// prints the summary table to stdout, returning the exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("memrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		schemeName = fs.String("scheme", "pair", "ECC scheme spec, name[@org][:key=val,...] (see -list-schemes)")
		compare    = fs.String("compare", "", "optional second scheme spec to compare against")
		ranks      = fs.Int("ranks", 1, "ranks per channel")
		window     = fs.Int("window", 0, "override the trace's MLP window")
		checkFlag  = fs.Bool("check", false, "audit the run against the JEDEC timing constraints; violations exit nonzero")
		cmdtrace   = fs.String("cmdtrace", "", "write the DRAM command trace to this file (- for stdout)")
		listSchs   = fs.Bool("list-schemes", false, "list registered schemes, spec grammar, organizations and sets, then exit")
		listFaults = fs.Bool("list-faults", false, "list registered fault scenarios (the reliability campaigns' -faults specs), then exit")
		profSpec   = fs.String("profile", "", "memory profile spec, name[:key=val,...] (default: the scheme org on DDR4-2400 timing; see -list-profiles)")
		listProfs  = fs.Bool("list-profiles", false, "list registered memory profiles, the spec grammar and options, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listSchs {
		fmt.Fprint(stdout, pair.SchemeSpecHelp())
		return 0
	}
	if *listFaults {
		fmt.Fprint(stdout, pair.FaultSpecHelp())
		return 0
	}
	if *listProfs {
		fmt.Fprint(stdout, pair.ProfileSpecHelp())
		return 0
	}
	var profile *memsim.Profile
	if *profSpec != "" {
		var err error
		if profile, err = memsim.NewProfile(*profSpec); err != nil {
			fmt.Fprintln(stderr, "memrun:", err)
			return 2
		}
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: memrun [flags] <trace-file>  (use - for stdin)")
		return 2
	}

	wl, err := loadTrace(fs.Arg(0), stdin)
	if err != nil {
		fmt.Fprintln(stderr, "memrun:", err)
		return 1
	}
	if *window > 0 {
		wl.Window = *window
	}
	var traceW io.Writer
	if *cmdtrace != "" {
		if *cmdtrace == "-" {
			traceW = stdout
		} else {
			f, err := os.Create(*cmdtrace)
			if err != nil {
				fmt.Fprintln(stderr, "memrun:", err)
				return 1
			}
			defer f.Close()
			traceW = f
		}
	}
	s := wl.Stats()
	fmt.Fprintf(stdout, "trace %s: %d reads, %d writes (%d masked), window %d\n\n",
		wl.Name, s.Reads, s.Writes+s.MaskedWrites, s.MaskedWrites, wl.Window)
	fmt.Fprintf(stdout, "%-10s %12s %12s %11s %11s %12s %9s %7s\n",
		"scheme", "cycles", "exec ms", "extra rds", "extra wrs", "read lat ns", "row hit%", "bus%")

	names := []string{*schemeName}
	if *compare != "" {
		names = append(names, *compare)
	}
	exit := 0
	for _, n := range names {
		scheme, err := pair.SchemeBySpec(n)
		if err != nil {
			fmt.Fprintln(stderr, "memrun:", err)
			return 1
		}
		var cfg memsim.Config
		if profile != nil {
			// The profile defines the memory system; the scheme only
			// contributes its access-cost model.
			cfg = profile.Config()
		} else {
			cfg = memsim.DefaultConfig()
			cfg.Org = scheme.Org()
		}
		cfg.Ranks = *ranks
		cfg.Cost = scheme.Cost()
		var chk *check.Checker
		var obs []memsim.Observer
		if *checkFlag {
			if profile != nil {
				chk = check.ForProfile(profile)
			} else {
				chk = check.New(cfg.Timing)
			}
			obs = append(obs, chk)
		}
		if traceW != nil {
			fmt.Fprintf(traceW, "# scheme %s\n", scheme.Name())
			obs = append(obs, &check.Tracer{W: traceW})
		}
		cfg.Observer = memsim.MultiObserver(obs...)
		res, err := memsim.Run(cfg, wl)
		if err != nil {
			fmt.Fprintln(stderr, "memrun:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%-10s %12d %12.3f %11d %11d %12.1f %9.1f %7.1f\n",
			scheme.Name(), res.Cycles, res.ExecSeconds(cfg.Timing)*1e3,
			res.ExtraReads, res.ExtraWrites, res.AvgReadLatencyNS(cfg.Timing),
			res.RowHitRate()*100, res.BusUtilization()*100)
		if chk != nil {
			if err := chk.Err(); err != nil {
				fmt.Fprintf(stderr, "memrun: %s: %v\n", scheme.Name(), err)
				for _, v := range chk.Violations() {
					fmt.Fprintln(stderr, "  ", v)
				}
				exit = 1
			} else {
				fmt.Fprintf(stdout, "check: %s clean (%d commands, 0 violations)\n",
					scheme.Name(), chk.Commands())
			}
		}
	}
	return exit
}

func loadTrace(path string, stdin io.Reader) (trace.Workload, error) {
	if path == "-" {
		return trace.Parse(stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return trace.Workload{}, err
	}
	defer f.Close()
	return trace.Parse(f)
}
