package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const smallTrace = `# trace unit window=4 requests=6
R 1a 0
W 2b 3
M 3c 1
R 1a 0
R 4d 2
W 5e 0
`

func writeTraceFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "unit.trace")
	if err := os.WriteFile(path, []byte(smallTrace), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runCLI(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestReplaySingleScheme(t *testing.T) {
	code, out, stderr := runCLI(t, "", "-scheme", "pair", writeTraceFile(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "trace unit: 3 reads, 3 writes (1 masked), window 4") {
		t.Fatalf("trace summary wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "pair") {
		t.Fatalf("result row missing:\n%s", out)
	}
	if len(strings.Fields(last)) != 8 {
		t.Fatalf("result row has wrong arity: %q", last)
	}
}

func TestCheckCleanRun(t *testing.T) {
	code, out, stderr := runCLI(t, "", "-scheme", "pair", "-check", writeTraceFile(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "check: pair clean") || !strings.Contains(out, "0 violations") {
		t.Fatalf("checker summary missing:\n%s", out)
	}
}

func TestCmdTraceToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmds.trace")
	code, _, stderr := runCLI(t, "", "-scheme", "none", "-cmdtrace", path, writeTraceFile(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	for _, want := range []string{"# scheme none", " ACT ", " RD ", " WR "} {
		if !strings.Contains(got, want) {
			t.Fatalf("command trace missing %q:\n%s", want, got)
		}
	}
}

func TestCmdTraceToStdout(t *testing.T) {
	code, out, _ := runCLI(t, "", "-scheme", "none", "-cmdtrace", "-", writeTraceFile(t))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, " ACT ") || !strings.Contains(out, "# scheme none") {
		t.Fatalf("stdout command trace missing:\n%s", out)
	}
}

func TestBadRanksExitNonzero(t *testing.T) {
	code, _, stderr := runCLI(t, "", "-scheme", "pair", "-ranks", "-3", writeTraceFile(t))
	if code != 1 || !strings.Contains(stderr, "memrun:") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestCompareAddsSecondRow(t *testing.T) {
	code, out, _ := runCLI(t, "", "-scheme", "pair", "-compare", "none", writeTraceFile(t))
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "\npair") || !strings.Contains(out, "\nnone") {
		t.Fatalf("compare table missing a scheme row:\n%s", out)
	}
}

func TestStdinDash(t *testing.T) {
	code, out, stderr := runCLI(t, smallTrace, "-scheme", "secded", "-")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "secded") {
		t.Fatalf("stdin replay produced:\n%s", out)
	}
}

func TestWindowOverride(t *testing.T) {
	_, out, _ := runCLI(t, "", "-window", "16", writeTraceFile(t))
	if !strings.Contains(out, "window 16") {
		t.Fatalf("window override ignored:\n%s", out)
	}
}

func TestUnknownScheme(t *testing.T) {
	code, _, stderr := runCLI(t, "", "-scheme", "quantum", writeTraceFile(t))
	if code != 1 || !strings.Contains(stderr, "memrun:") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestMissingTraceFile(t *testing.T) {
	code, _, stderr := runCLI(t, "", filepath.Join(t.TempDir(), "nope.trace"))
	if code != 1 || !strings.Contains(stderr, "memrun:") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestNoArgsUsage(t *testing.T) {
	code, _, stderr := runCLI(t, "")
	if code != 2 || !strings.Contains(stderr, "usage: memrun") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestBadFlag(t *testing.T) {
	if code, _, _ := runCLI(t, "", "-nope"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

// TestSpecSchemes replays the trace under registry spec strings — a DDR5
// organization and a spared-PAIR variant — without any memrun-side
// knowledge of either: the spec grammar is the whole interface.
func TestSpecSchemes(t *testing.T) {
	code, out, stderr := runCLI(t, "", "-scheme", "pair@ddr5x16", writeTraceFile(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "\npair") {
		t.Fatalf("ddr5 spec row missing:\n%s", out)
	}

	code, out, stderr = runCLI(t, "", "-scheme", "pair:spare=3.7", "-compare", "pair", writeTraceFile(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "pair-spared") {
		t.Fatalf("spared-PAIR spec row missing:\n%s", out)
	}
}

func TestListSchemes(t *testing.T) {
	code, out, _ := runCLI(t, "", "-list-schemes")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "name[@org][:key=val,...]") || !strings.Contains(out, "duo-rank") {
		t.Fatalf("-list-schemes output wrong:\n%s", out)
	}
}

func TestListProfiles(t *testing.T) {
	code, out, _ := runCLI(t, "", "-list-profiles")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "ddr5-4800") || !strings.Contains(out, "name[:key=val,...]") {
		t.Fatalf("-list-profiles output wrong:\n%s", out)
	}
}

func TestProfileRunWithCheck(t *testing.T) {
	code, out, stderr := runCLI(t, "", "-scheme", "pair", "-profile", "ddr5-4800", "-check", writeTraceFile(t))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "check: pair clean") {
		t.Fatalf("profile-parameterized check line missing:\n%s", out)
	}
	// The DDR5 run must differ from the DDR4 default (different clock,
	// BL16): compare the cycles column.
	_, ddr4, _ := runCLI(t, "", "-scheme", "pair", writeTraceFile(t))
	if out == ddr4 {
		t.Fatal("ddr5 profile output identical to ddr4 default")
	}

	if code, _, stderr := runCLI(t, "", "-profile", "nope", writeTraceFile(t)); code != 2 || !strings.Contains(stderr, "unknown profile") {
		t.Fatalf("bad profile spec: exit %d, stderr %q", code, stderr)
	}
}
