// Command tracegen emits the synthetic workload traces the performance
// experiments use, one request per line, in a plain text format other
// simulators can consume:
//
//	<op> <line-address-hex> <gap-cycles>
//
// where op is R (read), W (full-line write) or M (masked write).
//
// Usage:
//
//	tracegen -suite -requests 20000 -out traces/    # the ten SPEC-like traces
//	tracegen -name mix -pattern random -reads 0.7 -masked 0.3 > mix.trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pair/internal/trace"
)

func main() {
	var (
		suite    = flag.Bool("suite", false, "emit the ten SPEC-like traces to -out")
		out      = flag.String("out", ".", "output directory for -suite")
		requests = flag.Int("requests", 20000, "requests per trace")
		name     = flag.String("name", "custom", "trace name (single-trace mode)")
		pattern  = flag.String("pattern", "random", "sequential|random|strided|hotspot|pointer-chase")
		reads    = flag.Float64("reads", 0.7, "read fraction")
		masked   = flag.Float64("masked", 0.2, "masked fraction of writes")
		window   = flag.Int("window", 8, "MLP window hint (emitted as a header comment)")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	if *suite {
		for _, wl := range trace.SPECLike(*requests) {
			path := filepath.Join(*out, wl.Name+".trace")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			writeTrace(f, wl)
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d requests)\n", path, len(wl.Reqs))
		}
		return
	}

	pat, err := parsePattern(*pattern)
	if err != nil {
		fatal(err)
	}
	wl := trace.Generate(trace.Params{
		Name:        *name,
		Requests:    *requests,
		Lines:       1 << 20,
		Pattern:     pat,
		ReadFrac:    *reads,
		MaskedFrac:  *masked,
		Window:      *window,
		HotFraction: 0.6,
		Seed:        *seed,
	})
	writeTrace(os.Stdout, wl)
}

func parsePattern(s string) (trace.Pattern, error) {
	switch s {
	case "sequential":
		return trace.Sequential, nil
	case "random":
		return trace.Random, nil
	case "strided":
		return trace.Strided, nil
	case "hotspot":
		return trace.Hotspot, nil
	case "pointer-chase":
		return trace.PointerChase, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q", s)
	}
}

func writeTrace(f *os.File, wl trace.Workload) {
	w := bufio.NewWriter(f)
	defer w.Flush()
	fmt.Fprintf(w, "# trace %s window=%d requests=%d\n", wl.Name, wl.Window, len(wl.Reqs))
	for _, r := range wl.Reqs {
		op := "R"
		switch r.Op {
		case trace.Write:
			op = "W"
		case trace.MaskedWrite:
			op = "M"
		}
		fmt.Fprintf(w, "%s %x %d\n", op, r.Line, r.Gap)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
