// Command tracegen emits the synthetic workload traces the performance
// experiments use, one request per line, in a plain text format other
// simulators can consume:
//
//	<op> <line-address-hex> <gap-cycles>
//
// where op is R (read), W (full-line write) or M (masked write).
//
// Usage:
//
//	tracegen -suite -requests 20000 -out traces/    # the ten SPEC-like traces
//	tracegen -name mix -pattern random -reads 0.7 -masked 0.3 > mix.trace
//	tracegen -arrival poisson -load 0.2 -users 32 > traffic.trace  # open-loop traffic
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"pair/internal/faults"
	"pair/internal/memsim"
	"pair/internal/schemes"
	"pair/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args and writes traces to
// stdout (or files under -out in suite mode), returning the exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suite    = fs.Bool("suite", false, "emit the ten SPEC-like traces to -out")
		out      = fs.String("out", ".", "output directory for -suite")
		requests = fs.Int("requests", 20000, "requests per trace")
		name     = fs.String("name", "custom", "trace name (single-trace mode)")
		pattern  = fs.String("pattern", "random", "sequential|random|strided|hotspot|pointer-chase")
		reads    = fs.Float64("reads", 0.7, "read fraction")
		masked   = fs.Float64("masked", 0.2, "masked fraction of writes")
		window   = fs.Int("window", 8, "MLP window hint (emitted as a header comment)")
		seed     = fs.Int64("seed", 1, "generator seed")
		listSchs   = fs.Bool("list-schemes", false, "list the scheme registry the traces feed into (memrun/pairsim specs), then exit")
		listFaults = fs.Bool("list-faults", false, "list the fault-scenario registry the reliability campaigns inject (pairsim -faults specs), then exit")
		listProfs  = fs.Bool("list-profiles", false, "list the memory-profile registry the traces replay on (memrun/pairsim -profile specs), then exit")
		arrival    = fs.String("arrival", "", "open-loop traffic mode: arrival process (poisson|bursty|diurnal); replaces -pattern")
		load       = fs.Float64("load", 0.1, "with -arrival: offered load in requests per cycle")
		users      = fs.Int("users", 32, "with -arrival: concurrent request sources (the MLP window)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *listSchs {
		fmt.Fprint(stdout, schemes.ListText())
		return 0
	}
	if *listFaults {
		fmt.Fprint(stdout, faults.ListFaultsText())
		return 0
	}
	if *listProfs {
		fmt.Fprint(stdout, memsim.ListProfilesText())
		return 0
	}

	if *arrival != "" {
		arr, err := trace.ParseArrival(*arrival)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		wl := trace.Traffic(trace.TrafficParams{
			Name:        *name,
			Requests:    *requests,
			Arrival:     arr,
			Load:        *load,
			Users:       *users,
			ReadFrac:    *reads,
			MaskedFrac:  *masked,
			Lines:       1 << 20,
			HotFraction: 0.3,
			Seed:        *seed,
		})
		writeTrace(stdout, wl)
		return 0
	}

	if *suite {
		for _, wl := range trace.SPECLike(*requests) {
			path := filepath.Join(*out, wl.Name+".trace")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(stderr, "tracegen:", err)
				return 1
			}
			writeTrace(f, wl)
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "tracegen:", err)
				return 1
			}
			fmt.Fprintf(stderr, "wrote %s (%d requests)\n", path, len(wl.Reqs))
		}
		return 0
	}

	pat, err := parsePattern(*pattern)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	wl := trace.Generate(trace.Params{
		Name:        *name,
		Requests:    *requests,
		Lines:       1 << 20,
		Pattern:     pat,
		ReadFrac:    *reads,
		MaskedFrac:  *masked,
		Window:      *window,
		HotFraction: 0.6,
		Seed:        *seed,
	})
	writeTrace(stdout, wl)
	return 0
}

func parsePattern(s string) (trace.Pattern, error) {
	switch s {
	case "sequential":
		return trace.Sequential, nil
	case "random":
		return trace.Random, nil
	case "strided":
		return trace.Strided, nil
	case "hotspot":
		return trace.Hotspot, nil
	case "pointer-chase":
		return trace.PointerChase, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q", s)
	}
}

func writeTrace(f io.Writer, wl trace.Workload) {
	w := bufio.NewWriter(f)
	defer w.Flush()
	fmt.Fprintf(w, "# trace %s window=%d requests=%d\n", wl.Name, wl.Window, len(wl.Reqs))
	for _, r := range wl.Reqs {
		op := "R"
		switch r.Op {
		case trace.Write:
			op = "W"
		case trace.MaskedWrite:
			op = "M"
		}
		fmt.Fprintf(w, "%s %x %d\n", op, r.Line, r.Gap)
	}
}
