package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pair/internal/trace"
)

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestSingleTraceOutput(t *testing.T) {
	code, out, stderr := runCLI(t, "-name", "mix", "-requests", "100", "-reads", "0.5", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 101 {
		t.Fatalf("%d lines, want header + 100 requests", len(lines))
	}
	if !strings.HasPrefix(lines[0], "# trace mix window=8 requests=100") {
		t.Fatalf("header %q", lines[0])
	}
	ops := map[string]int{}
	for _, l := range lines[1:] {
		f := strings.Fields(l)
		if len(f) != 3 {
			t.Fatalf("malformed request line %q", l)
		}
		if f[0] != "R" && f[0] != "W" && f[0] != "M" {
			t.Fatalf("bad op in %q", l)
		}
		ops[f[0]]++
	}
	if ops["R"] == 0 || ops["W"]+ops["M"] == 0 {
		t.Fatalf("op mix %v lacks reads or writes", ops)
	}
}

func TestOutputDeterministicForSeed(t *testing.T) {
	_, a, _ := runCLI(t, "-requests", "200", "-seed", "9")
	_, b, _ := runCLI(t, "-requests", "200", "-seed", "9")
	if a != b {
		t.Fatal("same seed produced different traces")
	}
	_, c, _ := runCLI(t, "-requests", "200", "-seed", "10")
	if a == c {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestOutputRoundTripsThroughParser guards the CLI's wire format against
// the parser the simulator actually uses.
func TestOutputRoundTripsThroughParser(t *testing.T) {
	_, out, _ := runCLI(t, "-name", "rt", "-requests", "50", "-masked", "0.5")
	wl, err := trace.Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("emitted trace does not parse: %v", err)
	}
	if len(wl.Reqs) != 50 || wl.Name != "rt" {
		t.Fatalf("round-trip lost data: %d reqs, name %q", len(wl.Reqs), wl.Name)
	}
}

func TestSuiteWritesFiles(t *testing.T) {
	dir := t.TempDir()
	code, _, stderr := runCLI(t, "-suite", "-requests", "40", "-out", dir)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(files) < 5 {
		t.Fatalf("suite wrote %d traces (%v)", len(files), err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Parse(strings.NewReader(string(raw))); err != nil {
		t.Fatalf("suite trace %s does not parse: %v", files[0], err)
	}
	if !strings.Contains(stderr, "wrote ") {
		t.Fatalf("suite progress missing from stderr: %q", stderr)
	}
}

func TestSuiteBadDirFails(t *testing.T) {
	code, _, stderr := runCLI(t, "-suite", "-requests", "10", "-out", filepath.Join(t.TempDir(), "missing", "nested"))
	if code != 1 || !strings.Contains(stderr, "tracegen:") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestUnknownPattern(t *testing.T) {
	code, _, stderr := runCLI(t, "-pattern", "zigzag")
	if code != 1 || !strings.Contains(stderr, "unknown pattern") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestBadFlag(t *testing.T) {
	code, _, _ := runCLI(t, "-nope")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestListSchemes(t *testing.T) {
	code, out, _ := runCLI(t, "-list-schemes")
	if code != 0 || !strings.Contains(out, "name[@org][:key=val,...]") {
		t.Fatalf("exit %d, out:\n%s", code, out)
	}
}

func TestListProfiles(t *testing.T) {
	code, out, _ := runCLI(t, "-list-profiles")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "ddr5-4800") || !strings.Contains(out, "lpddr5-6400") {
		t.Fatalf("-list-profiles output wrong:\n%s", out)
	}
}

func TestArrivalTrafficMode(t *testing.T) {
	code, out, stderr := runCLI(t, "-arrival", "poisson", "-load", "0.2", "-users", "24",
		"-name", "traffic", "-requests", "300", "-seed", "4")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 301 {
		t.Fatalf("%d lines, want header + 300 requests", len(lines))
	}
	if !strings.HasPrefix(lines[0], "# trace traffic window=24 requests=300") {
		t.Fatalf("header %q", lines[0])
	}
	// Round-trips through the parser like every other tracegen output.
	wl, err := trace.Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if wl.Window != 24 || len(wl.Reqs) != 300 {
		t.Fatalf("parsed %d reqs window %d", len(wl.Reqs), wl.Window)
	}

	if code, _, _ := runCLI(t, "-arrival", "uniform"); code != 1 {
		t.Fatalf("bad arrival accepted (exit %d)", code)
	}
}
