// Command pairsim regenerates every table and figure of the PAIR study.
//
// Usage:
//
//	pairsim -exp all            # everything, publication scale
//	pairsim -exp f1 -quick      # one experiment, CI scale
//	pairsim -list               # what exists
//
// Long campaigns are resumable: with -checkpoint every Monte-Carlo
// campaign persists completed shards to <dir>, Ctrl-C stops the run after
// the in-flight shards finish, and a later invocation with -resume skips
// everything already computed — producing byte-identical results to an
// uninterrupted run.
//
//	pairsim -exp f3 -checkpoint ckpt/            # killable
//	pairsim -exp f3 -checkpoint ckpt/ -resume    # pick up where it stopped
//	pairsim -exp all -progress                   # shard counters + ETA on stderr
//
// Campaigns are failure-hardened: a shard that panics, errors, or hangs
// past -shard-timeout is retried up to -retries times (each attempt
// reseeds from the shard seed, so a successful retry is byte-identical);
// transient checkpoint I/O errors are retried with backoff, degrading to
// memory-only checkpointing when the budget runs out; and -salvage
// recovers every intact shard from a corrupted or truncated checkpoint
// instead of aborting the resume. Anything noteworthy is summarized in a
// defect report on stderr.
//
// Experiment identifiers match DESIGN.md's per-experiment index (T1, F1,
// F2, T2, F3, F4, F5, F6, F7, T3); EXPERIMENTS.md records claimed-vs-
// measured values.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pair/internal/campaign"
	"pair/internal/ecc"
	"pair/internal/experiments"
	"pair/internal/faults"
	"pair/internal/memsim"
	"pair/internal/schemes"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// listText is the -list output, one experiment per line.
const listText = `T1  scheme configuration table
F1  reliability (DUE+SDC) vs inherent BER
F2  SDC vs inherent BER
T2  outcome by fault pattern
F3  7-year lifetime failure probability
F4  performance, SPEC-like suite
F5  performance vs write ratio
F6  PAIR expansion-level sweep
F7  burst-error correction
T3  storage/logic/latency overheads
F8  failure probability vs scrub interval (ablation)
F9  PAIR across DRAM generations (DDR4 BL8 vs DDR5 BL16)
F10 pin-sparing (erasure) extension
T4  bus energy proxy (DBI interaction)
F11 performance vs patrol-scrub rate
F12 lifetime with post-package repair (DUE-only repairability)
T5  PAIR design space across device widths (x4/x8/x16/DDR5)
T2X coverage incl. rank-level schemes (secded, duo-rank)
F3X lifetime incl. rank-level schemes
F13 fault-scenario differential table (scenarios x schemes)
F14 tail read latency vs offered load (open-loop traffic, -profile)
`

// run is the testable entry point: it parses args, executes the selected
// experiments and writes results to stdout and diagnostics to stderr,
// returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pairsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp        = fs.String("exp", "all", "experiment id (t1|f1|f2|t2|f3|f4|f5|f6|f7|t3|f8|f9|f10|t2x|f3x|f13|f14|all)")
		quick      = fs.Bool("quick", false, "CI-scale trial counts")
		trials     = fs.Int("trials", 0, "override Monte-Carlo trials per point")
		devices    = fs.Int("devices", 0, "override lifetime population size")
		requests   = fs.Int("requests", 0, "override trace length")
		list       = fs.Bool("list", false, "list experiments and exit")
		checkpoint = fs.String("checkpoint", "", "directory for campaign shard checkpoints (enables kill-and-resume)")
		resume     = fs.Bool("resume", false, "skip shards already recorded in -checkpoint")
		progress   = fs.Bool("progress", false, "report campaign progress (shards, trials/s, ETA) on stderr")
		checkFlag  = fs.Bool("check", false, "attach the JEDEC protocol checker to every timing simulation; any violation fails the run")
		cmdtrace   = fs.String("cmdtrace", "", "write the DRAM command trace of every timing simulation to this file (- for stdout)")
		schemeList = fs.String("schemes", "", "comma/space-separated scheme specs (name[@org][:key=val,...]) overriding the default set of set-driven experiments")
		listSchs   = fs.Bool("list-schemes", false, "list registered schemes, spec grammar, organizations and sets, then exit")
		faultList  = fs.String("faults", "", "comma/space-separated fault scenario specs (name[:key=val,...] or compose(...)): the f13 roster, and an ambient fault layer for f1/f2/f1f2/t2/t2x")
		listFaults = fs.Bool("list-faults", false, "list registered fault scenarios, the spec grammar and options, then exit")
		profSpec   = fs.String("profile", "ddr5-4800", "memory profile spec, name[:key=val,...], for the profile columns of f4/f5 and the f14 traffic experiment")
		listProfs  = fs.Bool("list-profiles", false, "list registered memory profiles, the spec grammar and options, then exit")
		retries    = fs.Int("retries", 1, "extra attempts for a shard whose function panics, errors, or times out (0 disables)")
		shardTO    = fs.Duration("shard-timeout", 0, "watchdog: abandon and retry a shard running longer than this (0 disables)")
		salvage    = fs.Bool("salvage", false, "with -resume: recover every intact shard from a corrupted or truncated checkpoint instead of aborting")
		fleetURL   = fs.String("fleet", "", "submit campaigns to a pairserve coordinator at this URL instead of running locally (f13 only; checkpoints live on the coordinator)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	inst := experiments.SimInstrumentation{Check: *checkFlag}
	if *cmdtrace != "" {
		if *cmdtrace == "-" {
			inst.CmdTrace = stdout
		} else {
			f, err := os.Create(*cmdtrace)
			if err != nil {
				fmt.Fprintln(stderr, "pairsim:", err)
				return 1
			}
			defer f.Close()
			inst.CmdTrace = f
		}
	}
	// Always (re)install: a zero value resets any instrumentation left by a
	// previous in-process invocation (the tests call run() repeatedly).
	experiments.SetSimInstrumentation(inst)
	defer experiments.SetSimInstrumentation(experiments.SimInstrumentation{})
	if *list {
		fmt.Fprint(stdout, listText)
		return 0
	}
	if *listSchs {
		fmt.Fprint(stdout, schemes.ListText())
		return 0
	}
	if *listFaults {
		fmt.Fprint(stdout, faults.ListFaultsText())
		return 0
	}
	if *listProfs {
		fmt.Fprint(stdout, memsim.ListProfilesText())
		return 0
	}
	profile, err := memsim.NewProfile(*profSpec)
	if err != nil {
		fmt.Fprintln(stderr, "pairsim:", err)
		return 2
	}
	var override []ecc.Scheme
	if *schemeList != "" {
		var err error
		if override, err = schemes.ParseSpecList(*schemeList); err != nil {
			fmt.Fprintln(stderr, "pairsim:", err)
			return 2
		}
	}
	var scenarios []faults.Scenario
	if *faultList != "" {
		var err error
		if scenarios, err = faults.ParseFaultSpecList(*faultList); err != nil {
			fmt.Fprintln(stderr, "pairsim:", err)
			return 2
		}
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(stderr, "pairsim: -resume requires -checkpoint")
		return 2
	}
	if *salvage && !*resume {
		fmt.Fprintln(stderr, "pairsim: -salvage requires -resume")
		return 2
	}
	if *retries < 0 {
		fmt.Fprintln(stderr, "pairsim: -retries must be >= 0")
		return 2
	}
	if *fleetURL != "" && (*checkpoint != "" || *resume) {
		fmt.Fprintln(stderr, "pairsim: -fleet is incompatible with -checkpoint/-resume (the coordinator owns the checkpoint directory; resume with pairserve -resume)")
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	report := new(campaign.Report)
	opts := campaign.Options{
		CheckpointDir: *checkpoint,
		Resume:        *resume,
		Salvage:       *salvage,
		Retries:       *retries,
		ShardTimeout:  *shardTO,
		Report:        report,
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "pairsim: warning: "+format+"\n", args...)
		},
	}
	if *progress {
		prog := campaign.NewProgress()
		opts.Progress = prog
		stopReport := prog.Report(ctx, stderr, 2*time.Second)
		defer stopReport()
	}

	scale := scaleFor(*quick, *trials, *devices, *requests)
	scale.schemes = override
	scale.faults = scenarios
	scale.profile = profile
	// For the ambient experiments (f1/f2/f1f2/t2/t2x) several -faults specs
	// fold into one composed scenario; f13 keeps them as separate rows.
	scale.sweep.Faults = faults.Compose(scenarios...)
	ids := strings.Split(strings.ToLower(*exp), ",")
	if *exp == "all" {
		// f1f2 runs both sweeps off one set of conditional profiles.
		ids = []string{"t1", "f1f2", "t2", "f3", "f4", "f5", "f6", "f7", "t3", "t4", "t5", "f8", "f9", "f10", "f11", "f12", "f13", "f14"}
	}
	if *fleetURL != "" {
		return runFleetExperiments(ctx, *fleetURL, ids, *schemeList, *faultList, scale, *progress, stdout, stderr)
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		// Experiments sharing one checkpoint directory are namespaced by
		// their id, so e.g. t2 and t2x campaigns never collide.
		opts.Namespace = id
		out, err := runExperiment(ctx, id, scale, opts)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				msg := "pairsim: interrupted"
				if *checkpoint != "" {
					msg += "; completed shards are checkpointed — rerun with -resume to continue"
				}
				fmt.Fprintln(stderr, msg)
				return 130
			}
			fmt.Fprintln(stderr, "pairsim:", err)
			printDefects(stderr, report)
			return 1
		}
		fmt.Fprintln(stdout, out)
		fmt.Fprintf(stdout, "[%s done in %v]\n\n", strings.ToUpper(id), time.Since(start).Round(time.Millisecond))
	}
	printDefects(stderr, report)
	return 0
}

// printDefects writes the campaign defect report (retries, salvage,
// degradation, shard failures) to w; silent when nothing went wrong.
func printDefects(w io.Writer, rep *campaign.Report) {
	if rep.Empty() {
		return
	}
	fmt.Fprintln(w, "pairsim: campaign defect report:")
	for _, line := range strings.Split(rep.Summary(), "\n") {
		fmt.Fprintln(w, "  "+line)
	}
}

type scale struct {
	sweep    experiments.SweepSettings
	coverage int
	devices  int
	requests int
	// schemes, when non-nil, overrides the default registry set of every
	// set-driven experiment (-schemes flag: any specs the registry builds).
	schemes []ecc.Scheme
	// faults, when non-nil, is the -faults roster: f13's scenario rows, and
	// (composed) the ambient layer carried by sweep.Faults.
	faults []faults.Scenario
	// profile is the -profile spec: the non-DDR4 column of f4/f5 and the
	// memory system of the f14 traffic experiment.
	profile *memsim.Profile
}

// scenarioSet returns the -faults roster when given, else every
// registered scenario at default options.
func (s scale) scenarioSet() []faults.Scenario {
	if s.faults != nil {
		return s.faults
	}
	return experiments.FaultScenarios()
}

// ambient is the composed -faults scenario for the ambient experiments
// (nil when -faults was not given).
func (s scale) ambient() faults.Scenario { return s.sweep.Faults }

// set returns the -schemes override when given, else the named default.
func (s scale) set(def func() []ecc.Scheme) []ecc.Scheme {
	if s.schemes != nil {
		return s.schemes
	}
	return def()
}

func scaleFor(quick bool, trials, devices, requests int) scale {
	s := scale{
		sweep:    experiments.DefaultSweep(),
		coverage: 20000,
		devices:  40000,
		requests: 20000,
	}
	if quick {
		s.sweep = experiments.QuickSweep()
		s.coverage = 2000
		s.devices = 2000
		s.requests = 4000
	}
	if trials > 0 {
		s.sweep.Trials = trials
		s.coverage = trials
	}
	if devices > 0 {
		s.devices = devices
	}
	if requests > 0 {
		s.requests = requests
	}
	return s
}

// runExperiment executes one experiment id. Monte-Carlo experiments run
// as sharded campaigns honoring ctx cancellation and the campaign
// options; the closed-form tables (t1, t3, t4) and the trace-driven
// performance experiments compute inline.
func runExperiment(ctx context.Context, id string, sc scale, opts campaign.Options) (string, error) {
	switch id {
	case "t1":
		return experiments.T1Config().Render(), nil
	case "f1":
		r, err := experiments.F1F2Ctx(ctx, sc.set(experiments.CommoditySchemes), sc.sweep, opts)
		if err != nil {
			return "", err
		}
		return r.RenderF1(), nil
	case "f2":
		r, err := experiments.F1F2Ctx(ctx, sc.set(experiments.CommoditySchemes), sc.sweep, opts)
		if err != nil {
			return "", err
		}
		return r.RenderF2(), nil
	case "f1f2":
		r, err := experiments.F1F2Ctx(ctx, sc.set(experiments.CommoditySchemes), sc.sweep, opts)
		if err != nil {
			return "", err
		}
		return r.RenderF1() + "\n" + r.RenderF2(), nil
	case "t2":
		t, err := experiments.T2CoverageEnvCtx(ctx, sc.set(experiments.CommoditySchemes), sc.coverage, 1, sc.ambient(), opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f3":
		t, err := experiments.F3LifetimeCtx(ctx, sc.set(experiments.CommoditySchemes), sc.devices, 1, opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f4":
		set := sc.set(experiments.PerfSchemes)
		perf, err := experiments.F4Performance(set, sc.requests)
		if err != nil {
			return "", err
		}
		lat, err := experiments.F4Latency(set, sc.requests)
		if err != nil {
			return "", err
		}
		mix, err := experiments.F4CommandMix(set, sc.requests)
		if err != nil {
			return "", err
		}
		gm, err := experiments.F4ProfileGeomeans(set, sc.requests, []string{"ddr4-2400", sc.profile.Spec()})
		if err != nil {
			return "", err
		}
		latP, err := experiments.F4LatencyOn(set, sc.requests, sc.profile)
		if err != nil {
			return "", err
		}
		return perf.Render() + "\n" + lat.Render() + "\n" + mix.Render() + "\n" +
			gm.Render() + "\n" + latP.Render(), nil
	case "f5":
		t, err := experiments.F5WriteSweep(sc.set(experiments.PerfSchemes), sc.requests)
		if err != nil {
			return "", err
		}
		tp, err := experiments.F5WriteSweepOn(sc.set(experiments.PerfSchemes), sc.requests, sc.profile)
		if err != nil {
			return "", err
		}
		return t.Render() + "\n" + tp.Render(), nil
	case "f6":
		t, err := experiments.F6ExpandabilityCtx(ctx, sc.sweep.Trials, 1, opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f7":
		t, err := experiments.F7BurstCtx(ctx, sc.set(experiments.CommoditySchemes), sc.coverage, 1, opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "t3":
		return experiments.T3Complexity().Render(), nil
	case "f8":
		t, err := experiments.F8ScrubSweepCtx(ctx, sc.set(experiments.CommoditySchemes), sc.devices/4, 1, opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f9":
		t, err := experiments.F9DDR5Ctx(ctx, sc.coverage, 1, opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f10":
		t, err := experiments.F10SparingCtx(ctx, sc.coverage, 1, opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "t2x":
		t, err := experiments.T2CoverageEnvCtx(ctx, sc.set(experiments.ExtendedSchemes), sc.coverage, 1, sc.ambient(), opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f3x":
		t, err := experiments.F3LifetimeCtx(ctx, sc.set(experiments.ExtendedSchemes), sc.devices, 1, opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "t4":
		return experiments.T4BusEnergy().Render(), nil
	case "f11":
		t, err := experiments.F11ScrubTraffic(sc.requests)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "t5":
		t, err := experiments.T5WidthsCtx(ctx, sc.coverage, 1, opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f12":
		t, err := experiments.F12RepairCtx(ctx, sc.set(experiments.CommoditySchemes), sc.devices, 1, opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f13":
		t, err := experiments.F13ScenariosCtx(ctx, sc.set(experiments.CommoditySchemes), sc.scenarioSet(), sc.coverage, 1, opts)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f14":
		t, err := experiments.F14TailLatency(sc.set(experiments.PerfSchemes), sc.requests, sc.profile)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	default:
		return "", fmt.Errorf("unknown experiment %q (use -list)", id)
	}
}
