// Command pairsim regenerates every table and figure of the PAIR study.
//
// Usage:
//
//	pairsim -exp all            # everything, publication scale
//	pairsim -exp f1 -quick      # one experiment, CI scale
//	pairsim -list               # what exists
//
// Experiment identifiers match DESIGN.md's per-experiment index (T1, F1,
// F2, T2, F3, F4, F5, F6, F7, T3); EXPERIMENTS.md records claimed-vs-
// measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"pair/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (t1|f1|f2|t2|f3|f4|f5|f6|f7|t3|f8|f9|f10|t2x|f3x|all)")
		quick    = flag.Bool("quick", false, "CI-scale trial counts")
		trials   = flag.Int("trials", 0, "override Monte-Carlo trials per point")
		devices  = flag.Int("devices", 0, "override lifetime population size")
		requests = flag.Int("requests", 0, "override trace length")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		fmt.Print(`T1  scheme configuration table
F1  reliability (DUE+SDC) vs inherent BER
F2  SDC vs inherent BER
T2  outcome by fault pattern
F3  7-year lifetime failure probability
F4  performance, SPEC-like suite
F5  performance vs write ratio
F6  PAIR expansion-level sweep
F7  burst-error correction
T3  storage/logic/latency overheads
F8  failure probability vs scrub interval (ablation)
F9  PAIR across DRAM generations (DDR4 BL8 vs DDR5 BL16)
F10 pin-sparing (erasure) extension
T4  bus energy proxy (DBI interaction)
F11 performance vs patrol-scrub rate
F12 lifetime with post-package repair (DUE-only repairability)
T5  PAIR design space across device widths (x4/x8/x16/DDR5)
T2X coverage incl. rank-level schemes (secded, duo-rank)
F3X lifetime incl. rank-level schemes
`)
		return
	}

	scale := scaleFor(*quick, *trials, *devices, *requests)
	ids := strings.Split(strings.ToLower(*exp), ",")
	if *exp == "all" {
		// f1f2 runs both sweeps off one set of conditional profiles.
		ids = []string{"t1", "f1f2", "t2", "f3", "f4", "f5", "f6", "f7", "t3", "t4", "t5", "f8", "f9", "f10", "f11", "f12"}
	}
	for _, id := range ids {
		start := time.Now()
		out, err := run(strings.TrimSpace(id), scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pairsim:", err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s done in %v]\n\n", strings.ToUpper(id), time.Since(start).Round(time.Millisecond))
	}
}

type scale struct {
	sweep    experiments.SweepSettings
	coverage int
	devices  int
	requests int
}

func scaleFor(quick bool, trials, devices, requests int) scale {
	s := scale{
		sweep:    experiments.DefaultSweep(),
		coverage: 20000,
		devices:  40000,
		requests: 20000,
	}
	if quick {
		s.sweep = experiments.QuickSweep()
		s.coverage = 2000
		s.devices = 2000
		s.requests = 4000
	}
	if trials > 0 {
		s.sweep.Trials = trials
		s.coverage = trials
	}
	if devices > 0 {
		s.devices = devices
	}
	if requests > 0 {
		s.requests = requests
	}
	return s
}

func run(id string, sc scale) (string, error) {
	switch id {
	case "t1":
		return experiments.T1Config().Render(), nil
	case "f1":
		return experiments.F1F2(experiments.CommoditySchemes(), sc.sweep).RenderF1(), nil
	case "f2":
		return experiments.F1F2(experiments.CommoditySchemes(), sc.sweep).RenderF2(), nil
	case "f1f2":
		r := experiments.F1F2(experiments.CommoditySchemes(), sc.sweep)
		return r.RenderF1() + "\n" + r.RenderF2(), nil
	case "t2":
		return experiments.T2Coverage(experiments.CommoditySchemes(), sc.coverage, 1).Render(), nil
	case "f3":
		return experiments.F3Lifetime(experiments.CommoditySchemes(), sc.devices, 1).Render(), nil
	case "f4":
		return experiments.F4Performance(experiments.PerfSchemes(), sc.requests).Render() +
			"\n" + experiments.F4Latency(sc.requests).Render(), nil
	case "f5":
		return experiments.F5WriteSweep(experiments.PerfSchemes(), sc.requests).Render(), nil
	case "f6":
		return experiments.F6Expandability(sc.sweep.Trials, 1).Render(), nil
	case "f7":
		return experiments.F7Burst(experiments.CommoditySchemes(), sc.coverage, 1).Render(), nil
	case "t3":
		return experiments.T3Complexity().Render(), nil
	case "f8":
		return experiments.F8ScrubSweep(experiments.CommoditySchemes(), sc.devices/4, 1).Render(), nil
	case "f9":
		return experiments.F9DDR5(sc.coverage, 1).Render(), nil
	case "f10":
		return experiments.F10Sparing(sc.coverage, 1).Render(), nil
	case "t2x":
		return experiments.T2Coverage(experiments.ExtendedSchemes(), sc.coverage, 1).Render(), nil
	case "f3x":
		return experiments.F3Lifetime(experiments.ExtendedSchemes(), sc.devices, 1).Render(), nil
	case "t4":
		return experiments.T4BusEnergy().Render(), nil
	case "f11":
		return experiments.F11ScrubTraffic(sc.requests).Render(), nil
	case "t5":
		return experiments.T5Widths(sc.coverage, 1).Render(), nil
	case "f12":
		return experiments.F12Repair(experiments.CommoditySchemes(), sc.devices, 1).Render(), nil
	default:
		return "", fmt.Errorf("unknown experiment %q (use -list)", id)
	}
}
