package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"pair/internal/ecc"
	"pair/internal/experiments"
	"pair/internal/faults"
	"pair/internal/fleet"
	"pair/internal/reliability"
	"pair/internal/schemes"
)

// runFleetExperiments submits the selected experiments to a pairserve
// coordinator instead of running them locally, then renders the same
// tables from the merged shard counts. Only f13 is fleet-capable: its
// campaigns are fully declarative (scheme spec x scenario spec), which
// is exactly what travels on the wire; the other experiments close over
// local state and run in-process only.
func runFleetExperiments(ctx context.Context, base string, ids []string, schemeList, faultList string, sc scale, progress bool, stdout, stderr io.Writer) int {
	for _, id := range ids {
		if strings.TrimSpace(id) != "f13" {
			fmt.Fprintf(stderr, "pairsim: -fleet supports only the f13 experiment (its campaigns are declarative scheme x scenario specs); got %q\n", id)
			return 2
		}
	}

	// The spec strings are the wire format: default to the same sets the
	// local f13 uses (the "commodity" scheme set, every registered
	// scenario), so fleet and local runs produce the same table.
	schemeSpecs, scenarioSpecs, err := fleetSpecs(schemeList, faultList)
	if err != nil {
		fmt.Fprintln(stderr, "pairsim:", err)
		return 2
	}

	// The default client options carry the transient-fault layer: dial
	// and per-request timeouts plus retry-with-backoff, so a coordinator
	// restart mid-submit surfaces as warnings here, not a dead run.
	client := fleet.NewClientWith(base, fleet.ClientOptions{
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "pairsim: "+format+"\n", args...)
		},
	})
	jobID, err := client.Submit(ctx, fleet.JobSpec{
		Namespace: "f13",
		Schemes:   schemeSpecs,
		Scenarios: scenarioSpecs,
		Trials:    sc.coverage,
		Seed:      1,
	})
	if err != nil {
		fmt.Fprintln(stderr, "pairsim:", err)
		return 1
	}
	fmt.Fprintf(stderr, "pairsim: submitted job %s to %s (%d campaigns)\n",
		jobID, base, len(schemeSpecs)*len(scenarioSpecs))

	var pw io.Writer
	if progress {
		pw = stderr
	}
	start := time.Now()
	res, err := client.Wait(ctx, jobID, pw)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(stderr, "pairsim: interrupted; job %s keeps running on the coordinator — cancel it with POST %s/api/jobs/%s/cancel\n", jobID, base, jobID)
			return 130
		}
		fmt.Fprintln(stderr, "pairsim:", err)
		return 1
	}
	if res.ReportSummary != "" {
		fmt.Fprintln(stderr, "pairsim: fleet defect report:")
		for _, line := range strings.Split(res.ReportSummary, "\n") {
			fmt.Fprintln(stderr, "  "+line)
		}
	}
	if res.State != "done" {
		fmt.Fprintf(stderr, "pairsim: job %s finished in state %q: %s\n", jobID, res.State, res.Error)
		return 1
	}

	out, err := renderFleetF13(res, schemeSpecs, scenarioSpecs, sc.coverage)
	if err != nil {
		fmt.Fprintln(stderr, "pairsim:", err)
		return 1
	}
	fmt.Fprintln(stdout, out)
	fmt.Fprintf(stdout, "[F13 done in %v]\n\n", time.Since(start).Round(time.Millisecond))
	return 0
}

// fleetSpecs resolves the -schemes and -faults flags to spec strings,
// falling back to f13's default rosters.
func fleetSpecs(schemeList, faultList string) (schemeSpecs, scenarioSpecs []string, err error) {
	if schemeList != "" {
		if schemeSpecs, err = schemes.SplitSpecList(schemeList); err != nil {
			return nil, nil, err
		}
	} else {
		set, err := schemes.SetByID("commodity")
		if err != nil {
			return nil, nil, err
		}
		schemeSpecs = set.Specs
	}
	if faultList != "" {
		if scenarioSpecs, err = faults.SplitFaultSpecList(faultList); err != nil {
			return nil, nil, err
		}
	} else {
		scenarioSpecs = faults.ScenarioIDs()
	}
	return schemeSpecs, scenarioSpecs, nil
}

// renderFleetF13 renders the f13 differential table from a fleet job's
// merged counts: the same F13ScenariosCells renderer the local path
// uses, with the cell supplier looking campaigns up by (scheme spec,
// scenario spec) instead of running them.
func renderFleetF13(res *fleet.JobResult, schemeSpecs, scenarioSpecs []string, trials int) (string, error) {
	schemeObjs, err := schemes.Build(schemeSpecs)
	if err != nil {
		return "", err
	}
	scenarioObjs, err := faults.BuildScenarios(scenarioSpecs)
	if err != nil {
		return "", err
	}
	specOfScheme := map[ecc.Scheme]string{}
	for i, s := range schemeObjs {
		specOfScheme[s] = schemeSpecs[i]
	}
	specOfScenario := map[faults.Scenario]string{}
	for i, sc := range scenarioObjs {
		specOfScenario[sc] = scenarioSpecs[i]
	}
	byCell := map[string]fleet.CampaignResult{}
	for _, cr := range res.Campaigns {
		byCell[cr.Scheme+"\x00"+cr.Scenario] = cr
	}
	t, err := experiments.F13ScenariosCells(schemeObjs, scenarioObjs, trials,
		func(s ecc.Scheme, sc faults.Scenario) (reliability.OutcomeRates, error) {
			cr, ok := byCell[specOfScheme[s]+"\x00"+specOfScenario[sc]]
			if !ok {
				return reliability.OutcomeRates{}, fmt.Errorf("fleet result is missing the (%s, %s) campaign", specOfScheme[s], specOfScenario[sc])
			}
			return reliability.RatesFromCounts(cr.Counts, cr.Trials), nil
		})
	if err != nil {
		return "", err
	}
	return t.Render(), nil
}
