package main

import (
	"strings"
	"testing"

	"pair/internal/memsim"
)

func TestListProfilesOutput(t *testing.T) {
	code, out, _ := runCLI(t, "-list-profiles")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if out != memsim.ListProfilesText() {
		t.Fatal("-list-profiles must print memsim.ListProfilesText() verbatim")
	}
	for _, want := range []string{"ddr4-2400", "ddr5-4800", "lpddr5-6400", "name[:key=val,...]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list-profiles missing %q:\n%s", want, out)
		}
	}
}

func TestBadProfileSpecRejected(t *testing.T) {
	code, _, stderr := runCLI(t, "-profile", "ddr6", "-exp", "t1")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown profile") {
		t.Fatalf("stderr %q", stderr)
	}
}

func TestF14TailLatencyExperiment(t *testing.T) {
	code, out, stderr := runCLI(t, "-exp", "f14", "-requests", "800", "-check")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "F14: tail read latency") || !strings.Contains(out, "ddr5-4800") {
		t.Fatalf("f14 table missing:\n%s", out)
	}
	for _, want := range []string{"poisson@0.05", "poisson@0.35", "bursty@0.20", "diurnal@0.20"} {
		if !strings.Contains(out, want) {
			t.Fatalf("f14 row %q missing:\n%s", want, out)
		}
	}
}

func TestF4ProfileColumns(t *testing.T) {
	code, out, stderr := runCLI(t, "-exp", "f4", "-requests", "600", "-profile", "ddr5-4800:policy=closed")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "F4d: normalized performance geomean per scheme across profiles") {
		t.Fatalf("f4d table missing:\n%s", out)
	}
	if !strings.Contains(out, "ddr5-4800:policy=closed") {
		t.Fatalf("profile column missing:\n%s", out)
	}
	if !strings.Contains(out, "mean / p99 / p999") {
		t.Fatalf("f4b tail columns missing:\n%s", out)
	}
}
