package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pair/internal/fleet"
)

// startTestFleet boots an in-process coordinator and workers for the
// -fleet CLI tests, returning the coordinator's base URL.
func startTestFleet(t *testing.T, workers int) string {
	t.Helper()
	coord, err := fleet.NewCoordinator(fleet.CoordinatorOptions{})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	t.Cleanup(coord.Close)
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w := fleet.NewWorker(srv.URL, fleet.WorkerOptions{Poll: 5 * time.Millisecond, Retries: 1})
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
	return srv.URL
}

// TestFleetFlagMatchesLocalRun: `pairsim -exp f13 -fleet <url>` renders
// the identical table (timing line aside) to the same invocation
// without -fleet.
func TestFleetFlagMatchesLocalRun(t *testing.T) {
	args := []string{"-exp", "f13", "-trials", "120", "-schemes", "none secded", "-faults", "cell pin"}

	code, localOut, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("local run: exit %d, stderr %q", code, stderr)
	}

	base := startTestFleet(t, 2)
	code, fleetOut, stderr := runCLI(t, append(args, "-fleet", base, "-progress")...)
	if code != 0 {
		t.Fatalf("fleet run: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "submitted job") {
		t.Errorf("fleet run did not report its job submission; stderr %q", stderr)
	}
	if !strings.Contains(stderr, "progress: ") {
		t.Errorf("-progress produced no progress lines; stderr %q", stderr)
	}

	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "[F13 done in") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if strip(fleetOut) != strip(localOut) {
		t.Errorf("fleet table differs from local table\n--- local ---\n%s\n--- fleet ---\n%s", localOut, fleetOut)
	}
}

// TestFleetFlagValidation: -fleet rejects local-checkpoint flags and
// non-f13 experiments before talking to any coordinator.
func TestFleetFlagValidation(t *testing.T) {
	if code, _, stderr := runCLI(t, "-exp", "f13", "-fleet", "http://127.0.0.1:1", "-checkpoint", t.TempDir()); code != 2 ||
		!strings.Contains(stderr, "-fleet is incompatible") {
		t.Errorf("-fleet with -checkpoint: exit %d, stderr %q; want 2 and incompatibility error", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-exp", "t2", "-fleet", "http://127.0.0.1:1"); code != 2 ||
		!strings.Contains(stderr, "only the f13 experiment") {
		t.Errorf("-fleet with t2: exit %d, stderr %q; want 2 and f13-only error", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-exp", "f13", "-fleet", "http://127.0.0.1:1", "-schemes", "no-such-scheme:::"); code != 2 ||
		stderr == "" {
		t.Errorf("-fleet with malformed scheme spec: exit %d, stderr %q; want 2 and parse error", code, stderr)
	}
}
