package main

import (
	"strings"
	"testing"

	"pair/internal/faults"
)

func TestListFaultsOutput(t *testing.T) {
	code, out, _ := runCLI(t, "-list-faults")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if out != faults.ListFaultsText() {
		t.Fatal("-list-faults must print faults.ListFaultsText() verbatim")
	}
	for _, want := range []string{"name[:key=val,...]", "compose(", "pinburst", "chipkill", "retention"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list-faults missing %q:\n%s", want, out)
		}
	}
}

func TestF13DefaultRoster(t *testing.T) {
	code, out, stderr := runCLI(t, "-exp", "f13", "-trials", "40")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "F13: outcome by fault scenario (40 trials each") {
		t.Fatalf("f13 table missing or trials override ignored:\n%s", out)
	}
	// Default roster = every registered scenario, one row each.
	for _, id := range faults.ScenarioIDs() {
		if !strings.Contains(out, "\n"+id) {
			t.Fatalf("f13 default roster missing scenario %q:\n%s", id, out)
		}
	}
}

func TestF13FaultsRoster(t *testing.T) {
	code, out, stderr := runCLI(t, "-exp", "f13", "-trials", "40", "-faults", "pin,pinburst:b=4")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"\npin ", "\npinburst:b=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("f13 roster row %q missing:\n%s", want, out)
		}
	}
	// No row for any unrequested scenario (the note line still mentions
	// chipkill, so match at start-of-row only).
	if strings.Contains(out, "\nchipkill") {
		t.Fatalf("-faults roster must replace the default roster:\n%s", out)
	}
}

func TestAmbientFaultsTagTheT2Title(t *testing.T) {
	code, out, stderr := runCLI(t, "-exp", "t2", "-trials", "30", "-faults", "vrt:flicker=0.5")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "under ambient vrt:flicker=0.5") {
		t.Fatalf("ambient -faults must tag the t2 title:\n%s", out)
	}
}

func TestBadFaultSpecIsUsageError(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "f13", "-faults", "nosuch:x=1")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Fatalf("stderr must name the unknown scenario: %q", stderr)
	}
}
