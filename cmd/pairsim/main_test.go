package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pair/internal/campaign"
	"pair/internal/failpoint"
)

// runCLI invokes run with captured stdout/stderr.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestListOutput(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"T1 ", "F1 ", "T2 ", "F3 ", "F12", "T2X", "F3X"} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") < 15 {
		t.Fatalf("-list output suspiciously short:\n%s", out)
	}
}

func TestStaticTables(t *testing.T) {
	code, out, stderr := runCLI(t, "-exp", "t1,t3")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "T1: evaluated ECC configurations") {
		t.Fatalf("t1 table missing:\n%s", out)
	}
	if !strings.Contains(out, "[T1 done in") || !strings.Contains(out, "[T3 done in") {
		t.Fatalf("per-experiment timing lines missing:\n%s", out)
	}
}

func TestMonteCarloExperimentSmallScale(t *testing.T) {
	code, out, stderr := runCLI(t, "-exp", "t2", "-trials", "60")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "T2: outcome by injected fault pattern (60 trials each") {
		t.Fatalf("t2 table missing or trials override ignored:\n%s", out)
	}
	if !strings.Contains(out, "pair") || !strings.Contains(out, "1-cell") {
		t.Fatalf("t2 rows missing:\n%s", out)
	}
}

func TestPerfExperimentWithChecker(t *testing.T) {
	code, out, stderr := runCLI(t, "-exp", "f5", "-requests", "400", "-check")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "F5: normalized performance") {
		t.Fatalf("f5 table missing:\n%s", out)
	}
}

func TestF4IncludesCommandMix(t *testing.T) {
	code, out, stderr := runCLI(t, "-exp", "f4", "-requests", "400")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"F4: performance", "F4b: read latency", "F4c: command mix", "row hit%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("f4 output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdTraceFlagWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cmds.trace")
	code, _, stderr := runCLI(t, "-exp", "f11", "-requests", "200", "-cmdtrace", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "# sim scrub-off") || !strings.Contains(got, " ACT ") {
		t.Fatalf("command trace incomplete:\n%.300s", got)
	}
}

func TestUnknownExperiment(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "zz")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "unknown experiment") {
		t.Fatalf("stderr %q", stderr)
	}
}

func TestBadFlag(t *testing.T) {
	code, _, stderr := runCLI(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "flag") {
		t.Fatalf("stderr %q", stderr)
	}
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	code, _, stderr := runCLI(t, "-resume", "-exp", "t1")
	if code != 2 || !strings.Contains(stderr, "-resume requires -checkpoint") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

// TestCheckpointAndResumeCLI runs a Monte-Carlo experiment with
// checkpointing, then re-runs it with -resume: the resumed run must load
// every shard (writing no new results) and render identical output.
func TestCheckpointAndResumeCLI(t *testing.T) {
	dir := t.TempDir()
	code, first, stderr := runCLI(t, "-exp", "f9", "-trials", "80", "-checkpoint", dir)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint files written: %v %v", files, err)
	}
	stamps := map[string]int64{}
	for _, f := range files {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		stamps[f] = fi.ModTime().UnixNano()
	}

	code, second, stderr := runCLI(t, "-exp", "f9", "-trials", "80", "-checkpoint", dir, "-resume")
	if code != 0 {
		t.Fatalf("resume exit %d, stderr %q", code, stderr)
	}
	stripTimings := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "[") && strings.Contains(line, "done in") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if stripTimings(first) != stripTimings(second) {
		t.Fatalf("resumed output differs:\n--- first\n%s\n--- second\n%s", first, second)
	}
	for _, f := range files {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		if fi.ModTime().UnixNano() != stamps[f] {
			t.Fatalf("resume rewrote checkpoint %s — shards were recomputed", f)
		}
	}
}

func TestProgressFlagReports(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "f9", "-trials", "40", "-progress")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "progress: shards") {
		t.Fatalf("no progress lines on stderr: %q", stderr)
	}
}

func TestScaleFor(t *testing.T) {
	def := scaleFor(false, 0, 0, 0)
	if def.coverage != 20000 || def.devices != 40000 {
		t.Fatalf("default scale %+v", def)
	}
	q := scaleFor(true, 0, 0, 0)
	if q.coverage != 2000 || q.devices != 2000 || q.requests != 4000 {
		t.Fatalf("quick scale %+v", q)
	}
	o := scaleFor(true, 123, 456, 789)
	if o.sweep.Trials != 123 || o.coverage != 123 || o.devices != 456 || o.requests != 789 {
		t.Fatalf("override scale %+v", o)
	}
}

func TestListSchemesOutput(t *testing.T) {
	code, out, _ := runCLI(t, "-list-schemes")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{
		"name[@org][:key=val,...]",   // the spec grammar header
		"pair", "duo-rank", "secded", // registry schemes
		"ddr5x16", "ddr4x8ecc", // organizations
		"spare",                       // the spared-PAIR option doc
		"eval", "commodity", "energy", // named sets
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("-list-schemes missing %q:\n%s", want, out)
		}
	}
}

// TestSchemesOverrideSpecs is the registry extensibility proof: scheme
// variants that exist nowhere in the experiment code — DDR5 PAIR and
// spared-PAIR — run through a set-driven experiment purely via -schemes
// spec strings.
func TestSchemesOverrideSpecs(t *testing.T) {
	code, out, stderr := runCLI(t, "-exp", "t2", "-trials", "40",
		"-schemes", "pair@ddr5x16,pair:spare=3.7")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(out, "pair") || !strings.Contains(out, "pair-spared") {
		t.Fatalf("override schemes missing from t2 columns:\n%s", out)
	}
	if strings.Contains(out, "iecc") {
		t.Fatalf("-schemes did not replace the default commodity set:\n%s", out)
	}
}

func TestSchemesOverrideBadSpec(t *testing.T) {
	code, _, stderr := runCLI(t, "-exp", "t2", "-schemes", "quantum")
	if code != 2 || !strings.Contains(stderr, "unknown scheme") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestSalvageRequiresResume(t *testing.T) {
	code, _, stderr := runCLI(t, "-salvage", "-checkpoint", t.TempDir(), "-exp", "t1")
	if code != 2 || !strings.Contains(stderr, "-salvage requires -resume") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestNegativeRetriesRejected(t *testing.T) {
	code, _, stderr := runCLI(t, "-retries", "-1", "-exp", "t1")
	if code != 2 || !strings.Contains(stderr, "-retries must be >= 0") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

// TestRetriesAbsorbShardPanicCLI injects a one-shot shard panic under
// the whole CLI: with the default retry budget the run completes, the
// output matches an undisturbed run, and the defect report on stderr
// accounts for the retry.
func TestRetriesAbsorbShardPanicCLI(t *testing.T) {
	defer failpoint.Reset()
	code, clean, stderr := runCLI(t, "-exp", "f9", "-trials", "80")
	if code != 0 {
		t.Fatalf("clean exit %d, stderr %q", code, stderr)
	}

	failpoint.Arm(campaign.FailpointShard, failpoint.Action{Panic: "cli crash", Times: 1})
	code, got, stderr := runCLI(t, "-exp", "f9", "-trials", "80")
	if code != 0 {
		t.Fatalf("retried exit %d, stderr %q", code, stderr)
	}
	if stripTimings(got) != stripTimings(clean) {
		t.Fatalf("retried output differs:\n--- clean\n%s\n--- retried\n%s", clean, got)
	}
	if !strings.Contains(stderr, "campaign defect report") || !strings.Contains(stderr, "retries: 1 shard") {
		t.Fatalf("defect report missing from stderr: %q", stderr)
	}

	// With retries disabled the same panic fails the run — with a typed
	// shard failure in the defect report, not a process crash.
	failpoint.Arm(campaign.FailpointShard, failpoint.Action{Panic: "cli crash", Times: 1})
	code, _, stderr = runCLI(t, "-exp", "f9", "-trials", "80", "-retries", "0")
	if code != 1 {
		t.Fatalf("unretried panic exit %d, want 1; stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "shard failure") || !strings.Contains(stderr, "cli crash") {
		t.Fatalf("shard failure missing from defect report: %q", stderr)
	}
}

// TestSalvageCLIRecoversTruncatedCheckpoint damages a checkpoint on
// disk: a plain -resume refuses it, -resume -salvage recovers the
// intact shards and reproduces the original output exactly.
func TestSalvageCLIRecoversTruncatedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	code, first, stderr := runCLI(t, "-exp", "f9", "-trials", "80", "-checkpoint", dir)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint files written: %v %v", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], raw[:len(raw)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, stderr = runCLI(t, "-exp", "f9", "-trials", "80", "-checkpoint", dir, "-resume")
	if code != 1 || !strings.Contains(stderr, "salvage") {
		t.Fatalf("plain resume of damaged checkpoint: exit %d, stderr %q (want failure hinting at salvage)", code, stderr)
	}

	code, second, stderr := runCLI(t, "-exp", "f9", "-trials", "80", "-checkpoint", dir, "-resume", "-salvage")
	if code != 0 {
		t.Fatalf("salvage resume exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "salvaged") {
		t.Fatalf("salvage left no trace on stderr: %q", stderr)
	}
	if stripTimings(first) != stripTimings(second) {
		t.Fatalf("salvaged output differs:\n--- first\n%s\n--- salvaged\n%s", first, second)
	}
}

// stripTimings drops the wall-clock "[F9 done in ...]" lines so runs can
// be compared byte-for-byte.
func stripTimings(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "[") && strings.Contains(line, "done in") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}
