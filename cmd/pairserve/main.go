// Command pairserve runs the PAIR campaign fleet: a long-running
// coordinator that accepts campaign jobs over HTTP/JSON and hands shard
// leases to worker processes, or (with -worker) one such worker.
//
// Coordinator:
//
//	pairserve -listen 127.0.0.1:8080 -checkpoint ckpt/
//
// Workers (any number, started and stopped freely):
//
//	pairserve -worker -join http://127.0.0.1:8080
//
// Submit, watch and fetch jobs with pairsim's -fleet flag or plain
// curl; see README.md for the endpoint reference. Campaign checkpoints
// the coordinator merges are byte-identical to a local `pairsim
// -checkpoint` run's, so `pairsim -resume` over the same directory
// picks a fleet run up, and a restarted coordinator with -resume
// re-issues only the shards the previous run didn't finish.
//
// Shard seeds derive from (campaign label, seed, shard index) alone, so
// work may move between workers — through lease expiry, worker death or
// duplicated completions — without changing a single output byte.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pair/internal/failpoint"
	"pair/internal/fleet"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run serves (or works) until SIGINT/SIGTERM.
func run(args []string, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, stdout, stderr)
}

// runCtx is the testable entry point: it parses args and serves (or
// works) until ctx is cancelled, returning the process exit code. The
// coordinator prints its listen URL on stdout as its first line, so
// scripts (and the CI smoke test) can scrape the address of a
// dynamically chosen port.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pairserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		worker  = fs.Bool("worker", false, "run as a worker instead of the coordinator")
		join    = fs.String("join", "", "worker: coordinator base URL (e.g. http://127.0.0.1:8080)")
		id      = fs.String("id", "", "worker: name reported in leases and logs (default pid-derived)")
		poll    = fs.Duration("poll", 200*time.Millisecond, "worker: idle wait between lease polls")
		retries = fs.Int("retries", 1, "worker: extra local attempts for a shard that panics, errors, or times out")
		shardTO = fs.Duration("shard-timeout", 0, "worker: abandon and retry a shard attempt running longer than this (0 disables)")
		reqTO   = fs.Duration("request-timeout", fleet.DefaultRequestTimeout, "worker: per-request deadline for coordinator calls (negative disables)")
		httpTry = fs.Int("http-retries", fleet.DefaultClientRetries, "worker: attempts per coordinator call before a transient fault is surfaced (negative means 1)")

		listen       = fs.String("listen", "127.0.0.1:8080", "coordinator: listen address (port 0 picks one)")
		checkpoint   = fs.String("checkpoint", "", "coordinator: directory for merged campaign checkpoints (standard pairsim format)")
		journal      = fs.String("journal", "", "coordinator: directory for the crash-recovery journal; on start the journal is replayed so jobs and leases survive a kill")
		resume       = fs.Bool("resume", false, "coordinator: load existing checkpoints at job submission; only missing shards are leased")
		salvage      = fs.Bool("salvage", false, "coordinator: with -resume, recover intact shards from corrupted checkpoints instead of failing the submission")
		leaseTTL     = fs.Duration("lease-ttl", fleet.DefaultLeaseTTL, "coordinator: lease deadline; unrenewed leases are re-issued after this")
		shardRetries = fs.Int("shard-retries", fleet.DefaultShardRetries, "coordinator: permanent worker failures a shard absorbs before it is marked failed")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	warnf := func(format string, args ...any) {
		fmt.Fprintf(stderr, "pairserve: "+format+"\n", args...)
	}
	// Chaos harnesses (the CI chaos-smoke job) arm failpoints in real
	// pairserve processes through the environment; unset, this is a no-op.
	if err := failpoint.ArmFromEnv("PAIR_FAILPOINTS"); err != nil {
		fmt.Fprintln(stderr, "pairserve:", err)
		return 2
	}

	if *worker {
		if *join == "" {
			fmt.Fprintln(stderr, "pairserve: -worker requires -join <coordinator URL>")
			return 2
		}
		base := *join
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		wid := *id
		if wid == "" {
			wid = fmt.Sprintf("worker-%d", os.Getpid())
		}
		w := fleet.NewWorker(base, fleet.WorkerOptions{
			ID:             wid,
			Poll:           *poll,
			Retries:        *retries,
			ShardTimeout:   *shardTO,
			RequestTimeout: *reqTO,
			HTTPRetries:    *httpTry,
			Warnf:          warnf,
		})
		fmt.Fprintf(stdout, "pairserve: worker %s polling %s\n", wid, base)
		_ = w.Run(ctx)
		fmt.Fprintf(stdout, "pairserve: worker %s stopped\n", wid)
		return 0
	}

	if *salvage && !*resume {
		fmt.Fprintln(stderr, "pairserve: -salvage requires -resume")
		return 2
	}
	coord, err := fleet.NewCoordinator(fleet.CoordinatorOptions{
		CheckpointDir: *checkpoint,
		JournalDir:    *journal,
		Resume:        *resume,
		Salvage:       *salvage,
		LeaseTTL:      *leaseTTL,
		ShardRetries:  *shardRetries,
		Warnf:         warnf,
	})
	if err != nil {
		fmt.Fprintln(stderr, "pairserve:", err)
		return 1
	}
	defer coord.Close()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(stderr, "pairserve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "pairserve: listening on http://%s\n", ln.Addr())
	srv := &http.Server{Handler: coord.Handler()}
	go func() {
		<-ctx.Done()
		// Close first: it releases open SSE streams, so Shutdown drains
		// promptly instead of riding out its timeout against watchers.
		coord.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(stderr, "pairserve:", err)
		return 1
	}
	fmt.Fprintln(stdout, "pairserve: coordinator stopped")
	return 0
}
