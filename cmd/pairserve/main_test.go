package main

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"pair/internal/fleet"
)

// TestCoordinatorAndWorkerEndToEnd boots a coordinator and two workers
// through the CLI entry point (dynamic port scraped from stdout),
// submits a small job over HTTP, and waits for the merged result.
func TestCoordinatorAndWorkerEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var coordOut syncBuffer
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if code := runCtx(ctx, []string{"-listen", "127.0.0.1:0"}, &coordOut, &coordOut); code != 0 {
			t.Errorf("coordinator exit %d\n%s", code, coordOut.String())
		}
	}()

	base := ""
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if line, ok := strings.CutPrefix(firstLine(coordOut.String()), "pairserve: listening on "); ok {
			base = strings.TrimSpace(line)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if base == "" {
		t.Fatalf("coordinator never printed its listen URL; output %q", coordOut.String())
	}

	for i := 0; i < 2; i++ {
		var workerOut syncBuffer
		wg.Add(1)
		go func() {
			defer wg.Done()
			if code := runCtx(ctx, []string{"-worker", "-join", base, "-poll", "5ms"}, &workerOut, &workerOut); code != 0 {
				t.Errorf("worker exit %d\n%s", code, workerOut.String())
			}
		}()
	}

	client := fleet.NewClient(base, nil)
	id, err := client.Submit(ctx, fleet.JobSpec{
		Namespace: "f13",
		Schemes:   []string{"none"},
		Scenarios: []string{"cell"},
		Trials:    60,
		ShardSize: 30,
		Seed:      1,
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitCtx, waitCancel := context.WithTimeout(ctx, time.Minute)
	defer waitCancel()
	res, err := client.Wait(waitCtx, id, nil)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if res.State != "done" || len(res.Campaigns) != 1 {
		t.Fatalf("result = %+v, want one done campaign", res)
	}
	if sum := res.Campaigns[0].Counts[0] + res.Campaigns[0].Counts[1] + res.Campaigns[0].Counts[2] + res.Campaigns[0].Counts[3]; sum != 60 {
		t.Fatalf("campaign counts %v sum to %d, want 60", res.Campaigns[0].Counts, sum)
	}

	cancel() // SIGINT equivalent: both processes drain and exit 0
	wg.Wait()
}

// TestCLIValidation covers the flag errors.
func TestCLIValidation(t *testing.T) {
	ctx := context.Background()
	var out syncBuffer
	if code := runCtx(ctx, []string{"-worker"}, &out, &out); code != 2 {
		t.Errorf("-worker without -join: exit %d, want 2", code)
	}
	if code := runCtx(ctx, []string{"-salvage"}, &out, &out); code != 2 {
		t.Errorf("-salvage without -resume: exit %d, want 2", code)
	}
	if code := runCtx(ctx, []string{"-listen", "256.0.0.1:bad"}, &out, &out); code != 1 {
		t.Errorf("bad listen address: exit %d, want 1", code)
	}
}

// syncBuffer is a strings.Builder safe for cross-goroutine use.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
