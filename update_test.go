package pair_test

import (
	"bytes"
	"math/rand"
	"testing"

	"pair"
)

func TestUpdateMergesAndReencodes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range pair.AllSchemes() {
		line := make([]byte, s.Org().LineBytes())
		rng.Read(line)
		st := s.Encode(line)
		patch := []byte{0xDE, 0xAD, 0xBE, 0xEF}
		updated, err := pair.Update(s, st, 12, patch)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		want := append([]byte(nil), line...)
		copy(want[12:], patch)
		decoded, claim := s.Decode(updated)
		if pair.Classify(want, decoded, claim) != pair.OutcomeOK {
			t.Fatalf("%s: updated line does not decode clean", s.Name())
		}
		if !bytes.Equal(decoded, want) {
			t.Fatalf("%s: merge wrong", s.Name())
		}
	}
}

func TestUpdateScrubsLatentError(t *testing.T) {
	s := pair.NewPAIR()
	line := make([]byte, 64)
	st := s.Encode(line)
	st.Chips[0].Data.Flip(3, 3) // latent weak cell
	updated, err := pair.Update(s, st, 0, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	decoded, claim := s.Decode(updated)
	if claim != pair.ClaimClean {
		t.Fatal("latent error not scrubbed by RMW")
	}
	if decoded[0] != 1 {
		t.Fatal("patch lost")
	}
}

func TestUpdateRejectsBadRange(t *testing.T) {
	s := pair.NewPAIR()
	st := s.Encode(make([]byte, 64))
	if _, err := pair.Update(s, st, 62, []byte{1, 2, 3}); err == nil {
		t.Fatal("overflow accepted")
	}
	if _, err := pair.Update(s, st, -1, []byte{1}); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestUpdateRefusesUncorrectable(t *testing.T) {
	s := pair.NewPAIR()
	line := make([]byte, 64)
	st := s.Encode(line)
	// Garble a whole chip: uncorrectable.
	for p := 0; p < 16; p++ {
		st.Chips[0].Data.SetPinSymbol(p, byte(p)*37+1)
	}
	if _, err := pair.Update(s, st, 0, []byte{1}); err == nil {
		t.Fatal("masked write over uncorrectable line accepted")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	for _, id := range []string{"t1", "t3", "t4"} {
		out, err := pair.RunExperiment(id, true)
		if err != nil || out == "" {
			t.Fatalf("RunExperiment(%q): %v", id, err)
		}
	}
	if _, err := pair.RunExperiment("zz", true); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(pair.ExperimentIDs()) < 15 {
		t.Fatal("experiment list incomplete")
	}
}
