// Kernel microbenchmarks: throughput of the arithmetic and codec layers
// every experiment sits on.
package pair_test

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"pair/internal/core"
	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/gf256"
	"pair/internal/hamming"
	"pair/internal/memsim"
	"pair/internal/rs"
	"pair/internal/trace"

	"pair/internal/bitvec"
)

func BenchmarkGF256Mul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= gf256.Mul(byte(i), byte(i>>8)|1)
	}
	_ = acc
}

func BenchmarkRSEncode2016(b *testing.B) {
	c := rs.MustNew(20, 16)
	msg := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(msg)
	cw := make([]byte, 20)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.EncodeTo(msg, cw)
	}
}

func BenchmarkRSDecodeClean(b *testing.B) {
	c := rs.MustNew(20, 16)
	d := c.NewDecoder()
	msg := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(msg)
	cw := c.Encode(msg)
	dst := make([]byte, 20)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeInto(dst, cw, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSDecodeTwoErrors(b *testing.B) {
	c := rs.MustNew(20, 16)
	d := c.NewDecoder()
	msg := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(msg)
	cw := c.Encode(msg)
	rx := append([]byte(nil), cw...)
	rx[3] ^= 0x55
	rx[17] ^= 0xAA
	dst := make([]byte, 20)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeInto(dst, rx, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// cleanSlab64 builds a 64-codeword slab of distinct clean (20,16)
// codewords plus the per-call result buffers.
func cleanSlab64(c *rs.Code) (*rs.Slab, []int, []error) {
	rng := rand.New(rand.NewSource(1))
	s := rs.NewSlab(c.N, 64)
	msg := make([]byte, c.K)
	for i := 0; i < 64; i++ {
		rng.Read(msg)
		s.SetCodeword(i, c.Encode(msg))
	}
	return s, make([]int, 64), make([]error, 64)
}

// BenchmarkRSBatchDecodeClean is the slab clean path: one bitsliced
// syndrome sweep certifies all 64 codewords at once.
func BenchmarkRSBatchDecodeClean(b *testing.B) {
	c := rs.MustNew(20, 16)
	ws := c.NewBatchWorkspace()
	s, nchanged, errs := cleanSlab64(c)
	b.SetBytes(16 * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ndirty := ws.DecodeBatch(s, nil, nchanged, errs); ndirty != 0 {
			b.Fatal("clean slab reported dirty")
		}
	}
}

// BenchmarkRSBatchDecodeSparse is the campaign-realistic mix: one dirty
// codeword in the slab of 64, re-injected each iteration (DecodeBatch
// corrects the slab in place).
func BenchmarkRSBatchDecodeSparse(b *testing.B) {
	c := rs.MustNew(20, 16)
	ws := c.NewBatchWorkspace()
	s, nchanged, errs := cleanSlab64(c)
	v := s.At(13, 3)
	b.SetBytes(16 * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(13, 3, v^0x55)
		if ndirty := ws.DecodeBatch(s, nil, nchanged, errs); ndirty != 1 {
			b.Fatal("expected exactly one dirty codeword")
		}
	}
}

// BenchmarkRSBatchDecodeDirty is the worst case: every codeword dirty, so
// the sweep buys nothing and all 64 take the scalar fallback.
func BenchmarkRSBatchDecodeDirty(b *testing.B) {
	c := rs.MustNew(20, 16)
	ws := c.NewBatchWorkspace()
	s, nchanged, errs := cleanSlab64(c)
	orig := make([]byte, 64)
	for cw := 0; cw < 64; cw++ {
		orig[cw] = s.At(cw, 5)
	}
	b.SetBytes(16 * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for cw := 0; cw < 64; cw++ {
			s.Set(cw, 5, orig[cw]^0xA5)
		}
		if ndirty := ws.DecodeBatch(s, nil, nchanged, errs); ndirty != 64 {
			b.Fatal("expected all codewords dirty")
		}
	}
}

func BenchmarkRSBatchEncode(b *testing.B) {
	c := rs.MustNew(20, 16)
	ws := c.NewBatchWorkspace()
	rng := rand.New(rand.NewSource(1))
	s := rs.NewSlab(c.N, 64)
	msg := make([]byte, c.K)
	for i := 0; i < 64; i++ {
		rng.Read(msg)
		s.SetData(i, msg)
	}
	b.SetBytes(16 * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.EncodeBatch(s)
	}
}

func BenchmarkExpandableBatchDecodeClean(b *testing.B) {
	e, _ := rs.NewExpandableDefault(20, 16)
	ws := e.NewBatchWorkspace()
	rng := rand.New(rand.NewSource(1))
	s := rs.NewSlab(e.N(), 64)
	msg := make([]byte, e.K)
	for i := 0; i < 64; i++ {
		rng.Read(msg)
		s.SetCodeword(i, e.Encode(msg))
	}
	nchanged := make([]int, 64)
	errs := make([]error, 64)
	b.SetBytes(16 * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ndirty := ws.DecodeBatch(s, nil, nchanged, errs); ndirty != 0 {
			b.Fatal("clean slab reported dirty")
		}
	}
}

func BenchmarkExpandableDecodeClean(b *testing.B) {
	e, _ := rs.NewExpandableDefault(20, 16)
	d := e.NewDecoder()
	msg := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(msg)
	cw := e.Encode(msg)
	dst := make([]byte, 20)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeInto(dst, cw, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpandableDecodeTwoErrors(b *testing.B) {
	e, _ := rs.NewExpandableDefault(20, 16)
	d := e.NewDecoder()
	msg := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(msg)
	cw := e.Encode(msg)
	rx := append([]byte(nil), cw...)
	rx[3] ^= 0x55
	rx[17] ^= 0xAA
	dst := make([]byte, 20)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeInto(dst, rx, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHammingDecode136(b *testing.B) {
	c := hamming.MustSEC(128)
	data := bitvec.New(128)
	for i := 0; i < 128; i += 3 {
		data.Set(i, true)
	}
	cw := c.Encode(data)
	cw.Flip(40)
	dst := bitvec.New(c.N)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if outcome := c.DecodeInto(dst, cw); outcome != hamming.Corrected {
			b.Fatal("unexpected outcome")
		}
	}
}

func BenchmarkSchemeEncodeDecode(b *testing.B) {
	for _, mk := range []struct {
		name string
		s    ecc.BufferedScheme
	}{
		{"iecc", ecc.NewIECC(dram.DDR4x16())},
		{"xed", ecc.NewXED(dram.DDR4x16())},
		{"duo", ecc.NewDUO(dram.DDR4x16())},
		{"pair", core.MustNew(dram.DDR4x16(), core.DefaultConfig())},
	} {
		b.Run(mk.name, func(b *testing.B) {
			line := make([]byte, 64)
			rand.New(rand.NewSource(1)).Read(line)
			st := mk.s.NewStored()
			dst := make([]byte, 64)
			b.SetBytes(64)
			for i := 0; i < b.N; i++ {
				mk.s.EncodeInto(st, line)
				if claim := mk.s.DecodeInto(dst, st); claim != ecc.ClaimClean {
					b.Fatal("clean decode failed")
				}
			}
		})
	}
}

// BenchmarkSchemeBatchDecode measures the scheme-level slab path on a
// clean batch of 64 images — the campaign steady state, where one
// bitsliced sweep per chip certifies the whole batch.
func BenchmarkSchemeBatchDecode(b *testing.B) {
	for _, mk := range []struct {
		name string
		s    ecc.BatchScheme
	}{
		{"iecc", ecc.NewIECC(dram.DDR4x16())},
		{"xed", ecc.NewXED(dram.DDR4x16())},
		{"duo", ecc.NewDUO(dram.DDR4x16())},
		{"pair", core.MustNew(dram.DDR4x16(), core.DefaultConfig())},
	} {
		b.Run(mk.name, func(b *testing.B) {
			const width = 64
			rng := rand.New(rand.NewSource(1))
			lines := make([][]byte, width)
			dst := make([][]byte, width)
			sts := make([]*ecc.Stored, width)
			claims := make([]ecc.Claim, width)
			for i := range lines {
				lines[i] = make([]byte, 64)
				rng.Read(lines[i])
				dst[i] = make([]byte, 64)
				sts[i] = mk.s.NewStored()
			}
			mk.s.EncodeBatchInto(sts, lines)
			b.SetBytes(64 * width)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mk.s.DecodeBatchInto(dst, sts, claims)
				if claims[0] != ecc.ClaimClean {
					b.Fatal("clean batch decode failed")
				}
			}
		})
	}
}

func BenchmarkMemsim(b *testing.B) {
	wl := trace.SPECLike(4000)[0]
	cfg := memsim.DefaultConfig()
	b.SetBytes(int64(len(wl.Reqs)))
	for i := 0; i < b.N; i++ {
		res := memsim.MustRun(cfg, wl)
		if res.Cycles == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkSimThroughput measures simulator speed in simulated requests
// per wall-clock second on each builtin profile — the regression gate
// for the scheduling hot path (benchjson records the req/s metric).
func BenchmarkSimThroughput(b *testing.B) {
	wl := trace.Generate(trace.Params{
		Name: "mix", Requests: 4000, Lines: 1 << 18, Pattern: trace.Random,
		ReadFrac: 0.6, MaskedFrac: 0.3, MeanGap: 2, Window: 16, Seed: 21,
	})
	for _, spec := range []string{"ddr4-2400", "ddr5-4800", "lpddr5-6400"} {
		// Underscored name: a trailing -digits segment would be eaten by
		// benchjson's GOMAXPROCS-suffix stripper (and differ across
		// machines that do/don't print the -N suffix).
		b.Run(strings.ReplaceAll(spec, "-", "_"), func(b *testing.B) {
			cfg := memsim.MustProfile(spec).Config()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res := memsim.MustRun(cfg, wl)
				if res.Cycles == 0 {
					b.Fatal("empty run")
				}
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N*len(wl.Reqs))/elapsed, "req/s")
			}
		})
	}
}
