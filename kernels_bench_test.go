// Kernel microbenchmarks: throughput of the arithmetic and codec layers
// every experiment sits on.
package pair_test

import (
	"math/rand"
	"testing"

	"pair/internal/core"
	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/gf256"
	"pair/internal/hamming"
	"pair/internal/memsim"
	"pair/internal/rs"
	"pair/internal/trace"

	"pair/internal/bitvec"
)

func BenchmarkGF256Mul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= gf256.Mul(byte(i), byte(i>>8)|1)
	}
	_ = acc
}

func BenchmarkRSEncode2016(b *testing.B) {
	c := rs.MustNew(20, 16)
	msg := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(msg)
	cw := make([]byte, 20)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.EncodeTo(msg, cw)
	}
}

func BenchmarkRSDecodeClean(b *testing.B) {
	c := rs.MustNew(20, 16)
	d := c.NewDecoder()
	msg := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(msg)
	cw := c.Encode(msg)
	dst := make([]byte, 20)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeInto(dst, cw, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSDecodeTwoErrors(b *testing.B) {
	c := rs.MustNew(20, 16)
	d := c.NewDecoder()
	msg := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(msg)
	cw := c.Encode(msg)
	rx := append([]byte(nil), cw...)
	rx[3] ^= 0x55
	rx[17] ^= 0xAA
	dst := make([]byte, 20)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeInto(dst, rx, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRSDecodePooled measures the compatibility path (Code.Decode)
// that allocates the returned word but draws its workspace from a pool.
func BenchmarkRSDecodePooled(b *testing.B) {
	c := rs.MustNew(20, 16)
	msg := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(msg)
	cw := c.Encode(msg)
	rx := append([]byte(nil), cw...)
	rx[3] ^= 0x55
	rx[17] ^= 0xAA
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Decode(rx, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpandableDecodeClean(b *testing.B) {
	e, _ := rs.NewExpandableDefault(20, 16)
	d := e.NewDecoder()
	msg := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(msg)
	cw := e.Encode(msg)
	dst := make([]byte, 20)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeInto(dst, cw, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpandableDecodeTwoErrors(b *testing.B) {
	e, _ := rs.NewExpandableDefault(20, 16)
	d := e.NewDecoder()
	msg := make([]byte, 16)
	rand.New(rand.NewSource(1)).Read(msg)
	cw := e.Encode(msg)
	rx := append([]byte(nil), cw...)
	rx[3] ^= 0x55
	rx[17] ^= 0xAA
	dst := make([]byte, 20)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, err := d.DecodeInto(dst, rx, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHammingDecode136(b *testing.B) {
	c := hamming.MustSEC(128)
	data := bitvec.New(128)
	for i := 0; i < 128; i += 3 {
		data.Set(i, true)
	}
	cw := c.Encode(data)
	cw.Flip(40)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		if _, outcome := c.Decode(cw); outcome != hamming.Corrected {
			b.Fatal("unexpected outcome")
		}
	}
}

func BenchmarkSchemeEncodeDecode(b *testing.B) {
	for _, mk := range []struct {
		name string
		s    ecc.BufferedScheme
	}{
		{"iecc", ecc.NewIECC(dram.DDR4x16())},
		{"xed", ecc.NewXED(dram.DDR4x16())},
		{"duo", ecc.NewDUO(dram.DDR4x16())},
		{"pair", core.MustNew(dram.DDR4x16(), core.DefaultConfig())},
	} {
		b.Run(mk.name, func(b *testing.B) {
			line := make([]byte, 64)
			rand.New(rand.NewSource(1)).Read(line)
			st := mk.s.NewStored()
			dst := make([]byte, 64)
			b.SetBytes(64)
			for i := 0; i < b.N; i++ {
				mk.s.EncodeInto(st, line)
				if claim := mk.s.DecodeInto(dst, st); claim != ecc.ClaimClean {
					b.Fatal("clean decode failed")
				}
			}
		})
	}
}

func BenchmarkMemsim(b *testing.B) {
	wl := trace.SPECLike(4000)[0]
	cfg := memsim.DefaultConfig()
	b.SetBytes(int64(len(wl.Reqs)))
	for i := 0; i < b.N; i++ {
		res := memsim.MustRun(cfg, wl)
		if res.Cycles == 0 {
			b.Fatal("empty run")
		}
	}
}
