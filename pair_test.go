package pair_test

import (
	"bytes"
	"math/rand"
	"testing"

	"pair"
)

func TestFacadeSchemeConstruction(t *testing.T) {
	all := pair.AllSchemes()
	if len(all) != 6 {
		t.Fatalf("AllSchemes has %d entries", len(all))
	}
	want := []string{"none", "iecc", "xed", "duo", "pair-base", "pair"}
	for i, s := range all {
		if s.Name() != want[i] {
			t.Fatalf("scheme %d is %q, want %q", i, s.Name(), want[i])
		}
	}
}

func TestSchemeByName(t *testing.T) {
	for _, n := range []string{"none", "iecc", "xed", "duo", "duo-rank", "pair-base", "pair", "secded"} {
		s, err := pair.SchemeByName(n)
		if err != nil || s.Name() != n {
			t.Fatalf("SchemeByName(%q) = %v, %v", n, s, err)
		}
	}
	if _, err := pair.SchemeByName("nope"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestFacadeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, s := range pair.AllSchemes() {
		line := make([]byte, s.Org().LineBytes())
		rng.Read(line)
		decoded, claim := s.Decode(s.Encode(line))
		if pair.Classify(line, decoded, claim) != pair.OutcomeOK {
			t.Fatalf("%s: clean round trip failed", s.Name())
		}
		if !bytes.Equal(decoded, line) {
			t.Fatalf("%s: data mismatch", s.Name())
		}
	}
}

func TestFacadeOrganizations(t *testing.T) {
	if pair.DDR4x16().LineBytes() != 64 || pair.DDR4x8ECC().LineBytes() != 64 {
		t.Fatal("organizations broken")
	}
}

func TestNewPAIRWith(t *testing.T) {
	s, err := pair.NewPAIRWith(pair.DDR4x16(), pair.PAIRConfig{BaseParity: 2, Expansion: 3, DecodeLatencyNS: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.CodewordLength() != 21 {
		t.Fatalf("codeword length %d", s.CodewordLength())
	}
	if _, err := pair.NewPAIRWith(pair.DDR4x16(), pair.PAIRConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}
