// Package pair is the public facade of the PAIR reproduction — the
// pin-aligned in-DRAM ECC architecture using the expandability of
// Reed-Solomon codes (Jeong, Kang, Yang; DAC 2020) — together with the
// baseline schemes it is evaluated against (conventional in-DRAM ECC,
// rank-level SECDED, XED, DUO), a DRAM fault model, a Monte-Carlo
// reliability engine and a DDR4 timing simulator.
//
// Quick start:
//
//	scheme := pair.NewPAIR()
//	stored := scheme.Encode(line)            // protect a 64B cache line
//	data, claim := scheme.Decode(stored)     // recover it
//
// The experiment surface lives behind RunExperiment / ExperimentIDs; the
// pairsim binary and the repository benchmarks are thin wrappers over it.
package pair

import (
	"pair/internal/core"
	"pair/internal/dram"
	"pair/internal/ecc"
	"pair/internal/faults"
	"pair/internal/memsim"
	"pair/internal/schemes"
)

// Scheme is the common interface of every evaluated ECC architecture. See
// internal/ecc for the contract.
type Scheme = ecc.Scheme

// Claim and Outcome re-export the decode-claim and ground-truth outcome
// classifications; Stored is the physical storage image of one protected
// line (the unit fault injection operates on).
type (
	Claim   = ecc.Claim
	Outcome = ecc.Outcome
	Stored  = ecc.Stored
)

// Re-exported classification constants.
const (
	ClaimClean     = ecc.ClaimClean
	ClaimCorrected = ecc.ClaimCorrected
	ClaimDetected  = ecc.ClaimDetected

	OutcomeOK  = ecc.OutcomeOK
	OutcomeCE  = ecc.OutcomeCE
	OutcomeDUE = ecc.OutcomeDUE
	OutcomeSDC = ecc.OutcomeSDC
)

// Classify compares a decode result against the golden line.
func Classify(golden, decoded []byte, claim Claim) Outcome {
	return ecc.Classify(golden, decoded, claim)
}

// Organization re-exports the DRAM organization descriptor.
type Organization = dram.Organization

// DDR4x16 returns the study's commodity organization (4 x16 chips, BL8).
func DDR4x16() Organization { return dram.DDR4x16() }

// DDR4x8ECC returns the 9-chip x8 ECC-DIMM organization used by the
// rank-level SECDED baseline.
func DDR4x8ECC() Organization { return dram.DDR4x8ECC() }

// DDR5x16 returns a DDR5 32-bit subchannel (2 x16 chips, BL16) — each
// pin carries two PAIR symbols per burst.
func DDR5x16() Organization { return dram.DDR5x16() }

// PAIRConfig re-exports the PAIR operating-point configuration.
type PAIRConfig = core.Config

// NewPAIR returns the headline PAIR scheme: pin-aligned RS(20,16), t=2
// (2 base parity symbols + 2 expansion symbols), on the commodity x16
// organization.
func NewPAIR() *core.Scheme { return core.MustNew(dram.DDR4x16(), core.DefaultConfig()) }

// NewPAIRBase returns the unexpanded PAIR base: RS(18,16), t=1.
func NewPAIRBase() *core.Scheme { return core.MustNew(dram.DDR4x16(), core.BaseConfig()) }

// NewPAIRWith returns PAIR at an arbitrary operating point.
func NewPAIRWith(org Organization, cfg PAIRConfig) (*core.Scheme, error) { return core.New(org, cfg) }

// NewNone returns the unprotected baseline.
func NewNone() Scheme { return ecc.NewNone(dram.DDR4x16()) }

// NewIECC returns conventional in-DRAM ECC: a (136,128) SEC Hamming code
// per chip access.
func NewIECC() Scheme { return ecc.NewIECC(dram.DDR4x16()) }

// NewXED returns the XED baseline (on-die detection + rank-XOR
// correction), adapted to the commodity organization as described in
// DESIGN.md.
func NewXED() Scheme { return ecc.NewXED(dram.DDR4x16()) }

// NewDUO returns the DUO baseline (on-die redundancy forwarded to a
// controller-side RS(18,16) over beat-aligned symbols).
func NewDUO() Scheme { return ecc.NewDUO(dram.DDR4x16()) }

// NewDUORank returns the original nine-chip ECC-DIMM DUO (rank-level
// RS(81,64), t=8, chip-erasure retry) on the DDR4x8ECC organization.
func NewDUORank() Scheme { return ecc.NewDUORank(dram.DDR4x8ECC()) }

// NewSECDED returns the rank-level (72,64) Hsiao baseline on the 9-chip
// ECC-DIMM organization.
func NewSECDED() Scheme { return ecc.NewSECDED(dram.DDR4x8ECC()) }

// AllSchemes returns the evaluation set of the study, in presentation
// order: none, iecc, xed, duo, pair-base, pair. The composition lives in
// the scheme registry's "eval" set (internal/schemes).
func AllSchemes() []Scheme {
	return schemes.MustBuildSet("eval")
}

// SchemeByName builds a scheme from its canonical registry identifier on
// its default organization. The accepted names — and the name list in the
// error — come from the registry, so a newly registered scheme is
// immediately constructible here.
func SchemeByName(name string) (Scheme, error) {
	return schemes.New(name)
}

// SchemeBySpec builds a scheme from a full registry spec string,
//
//	name[@org][:key=val,...]
//
// e.g. "pair@ddr5x16" (the headline code on a DDR5 subchannel) or
// "pair:spare=3.7" (spared-PAIR with pins 3 and 7 of chip 0 erased).
// Plain names are valid specs, so this is a superset of SchemeByName.
func SchemeBySpec(spec string) (Scheme, error) {
	return schemes.New(spec)
}

// SchemeSpecHelp returns the full scheme/organization/set listing the
// cmd binaries print for -list-schemes.
func SchemeSpecHelp() string {
	return schemes.ListText()
}

// FaultScenario is a registered field-fault scenario — a seeded,
// composable per-trial corruption model from the fault-scenario registry
// (internal/faults).
type FaultScenario = faults.Scenario

// ScenarioBySpec builds a fault scenario from a registry spec string,
//
//	name[:key=val,...] or compose(spec,spec,...)
//
// e.g. "pinburst:b=4" (a four-beat burst on one DQ pin) or
// "compose(pin,inherent:ber=1e-5)" (a pin fault over ambient weak cells).
func ScenarioBySpec(spec string) (FaultScenario, error) {
	return faults.NewScenario(spec)
}

// FaultSpecHelp returns the full fault-scenario listing the cmd binaries
// print for -list-faults.
func FaultSpecHelp() string {
	return faults.ListFaultsText()
}

// MemoryProfile is a registered memory-generation profile — timing table,
// burst length, channel geometry, refresh mode and page policy — from
// the profile registry (internal/memsim).
type MemoryProfile = memsim.Profile

// ProfileBySpec builds a memory profile from a registry spec string,
//
//	name[:key=val,...]
//
// e.g. "ddr5-4800" or "ddr5-4800:policy=closed,channels=2".
func ProfileBySpec(spec string) (*MemoryProfile, error) {
	return memsim.NewProfile(spec)
}

// ProfileSpecHelp returns the full memory-profile listing the cmd
// binaries print for -list-profiles.
func ProfileSpecHelp() string {
	return memsim.ListProfilesText()
}
