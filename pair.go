// Package pair is the public facade of the PAIR reproduction — the
// pin-aligned in-DRAM ECC architecture using the expandability of
// Reed-Solomon codes (Jeong, Kang, Yang; DAC 2020) — together with the
// baseline schemes it is evaluated against (conventional in-DRAM ECC,
// rank-level SECDED, XED, DUO), a DRAM fault model, a Monte-Carlo
// reliability engine and a DDR4 timing simulator.
//
// Quick start:
//
//	scheme := pair.NewPAIR()
//	stored := scheme.Encode(line)            // protect a 64B cache line
//	data, claim := scheme.Decode(stored)     // recover it
//
// The experiment surface lives behind RunExperiment / ExperimentIDs; the
// pairsim binary and the repository benchmarks are thin wrappers over it.
package pair

import (
	"fmt"

	"pair/internal/core"
	"pair/internal/dram"
	"pair/internal/ecc"
)

// Scheme is the common interface of every evaluated ECC architecture. See
// internal/ecc for the contract.
type Scheme = ecc.Scheme

// Claim and Outcome re-export the decode-claim and ground-truth outcome
// classifications; Stored is the physical storage image of one protected
// line (the unit fault injection operates on).
type (
	Claim   = ecc.Claim
	Outcome = ecc.Outcome
	Stored  = ecc.Stored
)

// Re-exported classification constants.
const (
	ClaimClean     = ecc.ClaimClean
	ClaimCorrected = ecc.ClaimCorrected
	ClaimDetected  = ecc.ClaimDetected

	OutcomeOK  = ecc.OutcomeOK
	OutcomeCE  = ecc.OutcomeCE
	OutcomeDUE = ecc.OutcomeDUE
	OutcomeSDC = ecc.OutcomeSDC
)

// Classify compares a decode result against the golden line.
func Classify(golden, decoded []byte, claim Claim) Outcome {
	return ecc.Classify(golden, decoded, claim)
}

// Organization re-exports the DRAM organization descriptor.
type Organization = dram.Organization

// DDR4x16 returns the study's commodity organization (4 x16 chips, BL8).
func DDR4x16() Organization { return dram.DDR4x16() }

// DDR4x8ECC returns the 9-chip x8 ECC-DIMM organization used by the
// rank-level SECDED baseline.
func DDR4x8ECC() Organization { return dram.DDR4x8ECC() }

// DDR5x16 returns a DDR5 32-bit subchannel (2 x16 chips, BL16) — each
// pin carries two PAIR symbols per burst.
func DDR5x16() Organization { return dram.DDR5x16() }

// PAIRConfig re-exports the PAIR operating-point configuration.
type PAIRConfig = core.Config

// NewPAIR returns the headline PAIR scheme: pin-aligned RS(20,16), t=2
// (2 base parity symbols + 2 expansion symbols), on the commodity x16
// organization.
func NewPAIR() *core.Scheme { return core.MustNew(dram.DDR4x16(), core.DefaultConfig()) }

// NewPAIRBase returns the unexpanded PAIR base: RS(18,16), t=1.
func NewPAIRBase() *core.Scheme { return core.MustNew(dram.DDR4x16(), core.BaseConfig()) }

// NewPAIRWith returns PAIR at an arbitrary operating point.
func NewPAIRWith(org Organization, cfg PAIRConfig) (*core.Scheme, error) { return core.New(org, cfg) }

// NewNone returns the unprotected baseline.
func NewNone() Scheme { return ecc.NewNone(dram.DDR4x16()) }

// NewIECC returns conventional in-DRAM ECC: a (136,128) SEC Hamming code
// per chip access.
func NewIECC() Scheme { return ecc.NewIECC(dram.DDR4x16()) }

// NewXED returns the XED baseline (on-die detection + rank-XOR
// correction), adapted to the commodity organization as described in
// DESIGN.md.
func NewXED() Scheme { return ecc.NewXED(dram.DDR4x16()) }

// NewDUO returns the DUO baseline (on-die redundancy forwarded to a
// controller-side RS(18,16) over beat-aligned symbols).
func NewDUO() Scheme { return ecc.NewDUO(dram.DDR4x16()) }

// NewDUORank returns the original nine-chip ECC-DIMM DUO (rank-level
// RS(81,64), t=8, chip-erasure retry) on the DDR4x8ECC organization.
func NewDUORank() Scheme { return ecc.NewDUORank(dram.DDR4x8ECC()) }

// NewSECDED returns the rank-level (72,64) Hsiao baseline on the 9-chip
// ECC-DIMM organization.
func NewSECDED() Scheme { return ecc.NewSECDED(dram.DDR4x8ECC()) }

// AllSchemes returns the evaluation set of the study, in presentation
// order: none, iecc, xed, duo, pair-base, pair.
func AllSchemes() []Scheme {
	return []Scheme{NewNone(), NewIECC(), NewXED(), NewDUO(), NewPAIRBase(), NewPAIR()}
}

// SchemeByName builds a scheme from its identifier.
func SchemeByName(name string) (Scheme, error) {
	switch name {
	case "none":
		return NewNone(), nil
	case "iecc":
		return NewIECC(), nil
	case "xed":
		return NewXED(), nil
	case "duo":
		return NewDUO(), nil
	case "duo-rank":
		return NewDUORank(), nil
	case "pair-base":
		return NewPAIRBase(), nil
	case "pair":
		return NewPAIR(), nil
	case "secded":
		return NewSECDED(), nil
	default:
		return nil, fmt.Errorf("pair: unknown scheme %q (want none|iecc|xed|duo|duo-rank|pair-base|pair|secded)", name)
	}
}
