package pair

import (
	"fmt"

	"pair/internal/experiments"
)

// ExperimentIDs lists the identifiers RunExperiment accepts, in
// presentation order (see DESIGN.md's per-experiment index).
func ExperimentIDs() []string {
	return []string{"t1", "f1", "f2", "t2", "f3", "f4", "f4b", "f4c", "f5", "f6", "f7", "t3", "t4", "t5", "f8", "f9", "f10", "f11", "f12"}
}

// RunExperiment regenerates one of the study's tables or figures and
// returns its rendered text. quick selects CI-scale trial counts;
// publication scale is what `cmd/pairsim` uses by default.
func RunExperiment(id string, quick bool) (string, error) {
	sweep := experiments.DefaultSweep()
	coverage, devices, requests := 20000, 40000, 20000
	if quick {
		sweep = experiments.QuickSweep()
		coverage, devices, requests = 2000, 2000, 4000
	}
	switch id {
	case "t1":
		return experiments.T1Config().Render(), nil
	case "f1":
		return experiments.F1F2(experiments.CommoditySchemes(), sweep).RenderF1(), nil
	case "f2":
		return experiments.F1F2(experiments.CommoditySchemes(), sweep).RenderF2(), nil
	case "t2":
		return experiments.T2Coverage(experiments.CommoditySchemes(), coverage, 1).Render(), nil
	case "f3":
		return experiments.F3Lifetime(experiments.CommoditySchemes(), devices, 1).Render(), nil
	case "f4":
		r, err := experiments.F4Performance(experiments.PerfSchemes(), requests)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	case "f5":
		t, err := experiments.F5WriteSweep(experiments.PerfSchemes(), requests)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f6":
		return experiments.F6Expandability(sweep.Trials, 1).Render(), nil
	case "f7":
		return experiments.F7Burst(experiments.CommoditySchemes(), coverage, 1).Render(), nil
	case "t3":
		return experiments.T3Complexity().Render(), nil
	case "t4":
		return experiments.T4BusEnergy().Render(), nil
	case "t5":
		return experiments.T5Widths(coverage, 1).Render(), nil
	case "f8":
		return experiments.F8ScrubSweep(experiments.CommoditySchemes(), devices/4, 1).Render(), nil
	case "f9":
		return experiments.F9DDR5(coverage, 1).Render(), nil
	case "f10":
		return experiments.F10Sparing(coverage, 1).Render(), nil
	case "f4b":
		t, err := experiments.F4Latency(experiments.PerfSchemes(), requests)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f4c":
		t, err := experiments.F4CommandMix(experiments.PerfSchemes(), requests)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f11":
		t, err := experiments.F11ScrubTraffic(requests)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "f12":
		return experiments.F12Repair(experiments.CommoditySchemes(), devices, 1).Render(), nil
	default:
		return "", fmt.Errorf("pair: unknown experiment %q", id)
	}
}
