// Reliability example: a miniature version of the paper's inherent-fault
// study. For each scheme it injects weak cells at a scaled-up bit-error
// rate into a million protected lines and tallies what comes back —
// corrected, flagged, or silently wrong. The full-scale sweeps live in
// `pairsim -exp f1` (semi-analytic, reaches 1e-8 BER); this example shows
// the raw Monte-Carlo mechanics end to end.
//
//	go run ./examples/reliability
package main

import (
	"fmt"
	"math/rand"

	"pair"
	"pair/internal/ecc"
)

func main() {
	const (
		trials = 200000
		ber    = 2e-4 // deliberately harsh so raw MC sees failures
	)
	fmt.Printf("injecting weak cells at BER %.0e into %d lines per scheme\n\n", ber, trials)
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "scheme", "ok", "corrected", "detected", "silent")

	for _, scheme := range pair.AllSchemes() {
		rng := rand.New(rand.NewSource(7))
		line := make([]byte, scheme.Org().LineBytes())
		var counts [4]int
		for t := 0; t < trials; t++ {
			rng.Read(line)
			st := scheme.Encode(line)
			if ecc.InjectInherent(rng, st, ber) == 0 {
				counts[pair.OutcomeOK]++
				continue
			}
			decoded, claim := scheme.Decode(st)
			counts[pair.Classify(line, decoded, claim)]++
		}
		fmt.Printf("%-10s %10d %10d %10d %10d\n", scheme.Name(),
			counts[pair.OutcomeOK], counts[pair.OutcomeCE],
			counts[pair.OutcomeDUE], counts[pair.OutcomeSDC])
	}

	fmt.Println("\nReading the table: 'silent' (SDC) is the hazard the paper attacks —")
	fmt.Println("IECC miscorrects multi-bit patterns; PAIR's pin-aligned RS(20,16)")
	fmt.Println("corrects up to two symbols and flags nearly everything else.")
}
