// Expandability example: the property the paper's title is about. A
// vendor ships DRAM with the base RS(18,16) pin-aligned code; later (for
// a weak die, or a high-reliability SKU) the correction capability is
// raised to t=2 by *appending* two evaluation symbols to the spare-column
// region — without rewriting one bit of the already-programmed array.
//
//	go run ./examples/expandability
package main

import (
	"fmt"
	"math/rand"

	"pair"
	"pair/internal/rs"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// --- Code level -----------------------------------------------------
	fmt.Println("code level: RS(18,16) -> RS(20,16) by appending evaluations")
	base, _ := rs.NewExpandableDefault(18, 16)
	expanded, _ := base.Expand(rs.DefaultPoints(20)[18:]...)

	msg := make([]byte, 16)
	rng.Read(msg)
	cwBase := base.Encode(msg)
	cwFull, _ := base.ExtendCodeword(cwBase, expanded)
	fmt.Printf("  base codeword:      %x\n", cwBase)
	fmt.Printf("  expanded codeword:  %x\n", cwFull)
	fmt.Printf("  first 18 symbols unchanged: %v\n\n", equal(cwBase, cwFull[:18]))

	// Two symbol errors: base code (t=1) must give up, expanded corrects.
	rx := append([]byte(nil), cwBase...)
	rx[2] ^= 0x5A
	rx[11] ^= 0xC3
	_, _, errBase := base.Decode(rx, nil)
	rxFull := append([]byte(nil), cwFull...)
	rxFull[2] ^= 0x5A
	rxFull[11] ^= 0xC3
	_, nFixed, errFull := expanded.Decode(rxFull, nil)
	fmt.Printf("  double error: base decoder says %q, expanded decoder fixed %d symbols (err=%v)\n\n",
		errMsg(errBase), nFixed, errFull)

	// --- Architecture level ----------------------------------------------
	fmt.Println("architecture level: upgrade a stored image in place")
	baseScheme := pair.NewPAIRBase()
	fullScheme := pair.NewPAIR()

	line := make([]byte, 64)
	rng.Read(line)
	stored := baseScheme.Encode(line)
	upgraded, err := fullScheme.ExpandStored(baseScheme, stored)
	if err != nil {
		panic(err)
	}
	same := true
	for i := range stored.Chips {
		if !upgraded.Chips[i].Data.Equal(stored.Chips[i].Data) {
			same = false
		}
		for j := 0; j < 16; j++ { // the 16 base-parity bits per chip
			if upgraded.Chips[i].OnDie.Get(j) != stored.Chips[i].OnDie.Get(j) {
				same = false
			}
		}
	}
	fmt.Printf("  data and base parity preserved verbatim: %v\n", same)

	// The upgraded image now survives a double-pin failure.
	upgraded.Chips[0].Data.SetPinSymbol(1, 0x00)
	upgraded.Chips[0].Data.SetPinSymbol(8, 0xFF)
	decoded, claim := fullScheme.Decode(upgraded)
	fmt.Printf("  double-pin failure after upgrade: claim=%v, outcome=%v\n",
		claim, pair.Classify(line, decoded, claim))
}

func equal(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func errMsg(err error) string {
	if err == nil {
		return "corrected (!)"
	}
	return err.Error()
}
