// Repair-flow example: the vendor lifecycle PAIR's expandability and pin
// alignment enable, end to end on a DDR5 device.
//
//  1. Ship: DDR5 x16 BL16 with the base RS(34,32) code (t=1).
//
//  2. Field: DQ pin 6 of chip 1 degrades. On BL16 a pin carries TWO
//     symbols, so the base code starts flagging uncorrectable accesses.
//
//  3. Repair, step 1 — expand: the controller writes two expansion
//     symbols per access into the spare-column region (no stored data
//     rewritten) and switches to the RS(36,32) t=2 decoder. The dead
//     pin is again correctable.
//
//  4. Repair, step 2 — spare: test flow confirms pin 6 is dead; marking
//     it spared turns its two symbols into erasures, leaving budget for
//     one more fresh error per access on top of the dead pin.
//
//     go run ./examples/repairflow
package main

import (
	"fmt"
	"math/rand"

	"pair"
)

func main() {
	org := pair.DDR5x16()
	base, err := pair.NewPAIRWith(org, pair.PAIRConfig{BaseParity: 2, Expansion: 0, DecodeLatencyNS: 2})
	check(err)
	full, err := pair.NewPAIRWith(org, pair.PAIRConfig{BaseParity: 2, Expansion: 2, DecodeLatencyNS: 2})
	check(err)

	rng := rand.New(rand.NewSource(9))
	line := make([]byte, org.LineBytes())
	rng.Read(line)

	fmt.Printf("1. shipped: DDR5 x16 BL16, RS(%d,32) t=%d\n", base.CodewordLength(), base.T())
	stored := base.Encode(line)

	// Field failure: pin 6 of chip 1 dies (both symbol halves garbage).
	deadChip, deadPin := 1, 6
	kill := func(st *pair.Stored) {
		for part := 0; part < 2; part++ {
			old := st.Chips[deadChip].Data.PinSymbolPart(deadPin, part)
			st.Chips[deadChip].Data.SetPinSymbolPart(deadPin, part, old^byte(1+rng.Intn(255)))
		}
	}
	st := stored.Clone()
	kill(st)
	_, claim := base.Decode(st)
	fmt.Printf("2. pin %d of chip %d dies -> two bad symbols; base decoder: %v\n", deadPin, deadChip, claim)

	// Repair step 1: in-place expansion to t=2.
	upgraded, err := full.ExpandStored(base, stored)
	check(err)
	st = upgraded.Clone()
	kill(st)
	decoded, claim := full.Decode(st)
	fmt.Printf("3. expand to RS(%d,32) t=%d in place (stored data untouched); decoder: %v, outcome: %v\n",
		full.CodewordLength(), full.T(), claim, pair.Classify(line, decoded, claim))

	// Repair step 2: mark the pin spared; now a fresh weak cell on
	// another pin is also survivable.
	spared, err := full.WithSparedPins(map[int][]int{deadChip: {deadPin}})
	check(err)
	st = upgraded.Clone()
	kill(st)
	st.Chips[deadChip].Data.Flip(11, 13) // fresh weak cell, third symbol
	if d, c := full.Decode(st.Clone()); pair.Classify(line, d, c).IsFailure() {
		fmt.Printf("4. dead pin + fresh cell = 3 bad symbols: plain t=2 decoder fails (%v)...\n", c)
	}
	decoded, claim = spared.Decode(st)
	fmt.Printf("   ...spared decoder (pin as erasure): %v, outcome: %v\n",
		claim, pair.Classify(line, decoded, claim))
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
