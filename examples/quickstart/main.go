// Quickstart: protect a cache line with PAIR, break it three ways, watch
// the pin-aligned decoder cope.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"math/rand"

	"pair"
)

func main() {
	// Schemes are built from registry specs, name[@org][:key=val,...] —
	// "pair" is the headline pin-aligned RS(20,16), t=2, in-DRAM. Try
	// "pair@ddr5x16" or "pair:spare=3.7" for variants; `pairsim
	// -list-schemes` prints the whole registry.
	scheme, err := pair.SchemeBySpec("pair")
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(42))

	// A 64-byte cache line of "application data".
	line := make([]byte, 64)
	rng.Read(line)

	// Encode: the line is split over the rank's four x16 chips; each chip
	// access gets a pin-aligned Reed-Solomon codeword whose parity lives
	// in the on-die redundancy region.
	stored := scheme.Encode(line)
	fmt.Printf("stored image: %d chips, %d bits total (%.1f%% redundancy)\n\n",
		len(stored.Chips), stored.TotalBits(), scheme.StorageOverhead()*100)

	// Case 1: a weak cell flips one bit.
	st := stored.Clone()
	st.Chips[0].Data.Flip(5, 3) // pin 5, beat 3
	report("single weak cell", scheme, line, st)

	// Case 2: a DQ pin dies — every beat on pin 9 of chip 2 is garbage.
	// Pin alignment makes this a single-symbol error.
	st = stored.Clone()
	st.Chips[2].Data.SetPinSymbol(9, st.Chips[2].Data.PinSymbol(9)^0xB7)
	report("dead DQ pin", scheme, line, st)

	// Case 3: two corrupted pins in one chip — needs the expanded t=2
	// code (the base RS(18,16) would have flagged this as uncorrectable).
	st = stored.Clone()
	st.Chips[1].Data.SetPinSymbol(3, st.Chips[1].Data.PinSymbol(3)^0x01)
	st.Chips[1].Data.SetPinSymbol(14, st.Chips[1].Data.PinSymbol(14)^0xFF)
	report("two corrupted pins", scheme, line, st)

	// Case 4: a whole row goes bad — beyond any per-access code's
	// correction power, but PAIR flags it instead of lying.
	st = stored.Clone()
	for p := 0; p < 16; p++ {
		st.Chips[3].Data.SetPinSymbol(p, byte(rng.Intn(256)))
	}
	for i := 0; i < st.Chips[3].OnDie.Len(); i++ {
		if rng.Intn(2) == 1 {
			st.Chips[3].OnDie.Flip(i)
		}
	}
	report("row failure (whole access garbage)", scheme, line, st)

	// Case 5: a device with two known-bad pins, built as spared-PAIR
	// straight from a spec string — the repair map turns pins 3 and 7 of
	// chip 0 into erasures, so both dead pins AND a fresh weak cell still
	// decode (budget: 2*errors + erasures <= 4).
	spared, err := pair.SchemeBySpec("pair:spare=3.7")
	if err != nil {
		panic(err)
	}
	st = spared.Encode(line)
	st.Chips[0].Data.SetPinSymbol(3, st.Chips[0].Data.PinSymbol(3)^0x5A)
	st.Chips[0].Data.SetPinSymbol(7, st.Chips[0].Data.PinSymbol(7)^0xC3)
	st.Chips[0].Data.Flip(12, 1)
	report("two dead pins + weak cell (spared)", spared, line, st)
}

func report(what string, scheme pair.Scheme, golden []byte, st *pair.Stored) {
	decoded, claim := scheme.Decode(st)
	outcome := pair.Classify(golden, decoded, claim)
	fmt.Printf("%-36s decoder claim: %-9s  data intact: %-5v  outcome: %s\n",
		what, claim, bytes.Equal(decoded, golden), outcome)
}
