// Performance example: run one write-heavy workload through the DDR4
// timing simulator under each scheme's cost model and print the
// mechanism-level accounting — where XED's inline parity writes and the
// read-modify-write traffic go. The full ten-workload figure is
// `pairsim -exp f4`.
//
//	go run ./examples/performance
package main

import (
	"fmt"

	"pair"
	"pair/internal/memsim"
	"pair/internal/trace"
)

func main() {
	// A gcc-like mix: hot working set, 20% writes, a third of them masked.
	wl := trace.Generate(trace.Params{
		Name:        "gcc-like",
		Requests:    30000,
		Lines:       1 << 20,
		Pattern:     trace.Hotspot,
		ReadFrac:    0.80,
		MaskedFrac:  0.35,
		MeanGap:     6,
		Window:      6,
		HotFraction: 0.6,
		Seed:        104,
	})
	s := wl.Stats()
	fmt.Printf("workload %s: %d reads, %d writes (%d masked), MLP window %d\n\n",
		wl.Name, s.Reads, s.Writes+s.MaskedWrites, s.MaskedWrites, wl.Window)
	fmt.Printf("%-10s %12s %9s %11s %11s %12s %10s %9s\n",
		"scheme", "cycles", "norm", "extra rds", "extra wrs", "read lat ns", "p99 ns", "row hit%")

	// The comparison set as registry specs — swap in any variant the
	// grammar can express (e.g. "pair@ddr5x16", "pair:spare=3.7").
	var baseline uint64
	for _, spec := range []string{"none", "iecc", "xed", "duo", "pair"} {
		scheme, err := pair.SchemeBySpec(spec)
		if err != nil {
			panic(err)
		}
		cfg := memsim.DefaultConfig()
		cfg.Cost = scheme.Cost()
		res := memsim.MustRun(cfg, wl)
		if scheme.Name() == "none" {
			baseline = res.Cycles
		}
		norm := float64(baseline) / float64(res.Cycles)
		hit := float64(res.RowHits) / float64(res.RowHits+res.RowMisses) * 100
		fmt.Printf("%-10s %12d %9.3f %11d %11d %12.1f %10.1f %8.1f%%\n",
			scheme.Name(), res.Cycles, norm, res.ExtraReads, res.ExtraWrites,
			res.AvgReadLatencyNS(cfg.Timing), res.P99ReadLatencyNS(cfg.Timing), hit)
	}

	fmt.Println("\nXED pays one companion parity write per write plus RMW reads for")
	fmt.Println("masked writes; DUO stretches every burst by one beat; PAIR changes")
	fmt.Println("nothing on the bus — its cost is the in-die decode latency.")
}
