package pair

import (
	"fmt"

	"pair/internal/ecc"
)

// Update performs a masked (partial) write against a stored image: the
// bytes data[0:len(data)] replace the line content at byte offset off,
// and the image is re-encoded.
//
// This is the read-modify-write every per-access ECC scheme performs for
// sub-line writes — the operation the timing model charges as
// ExtraReadsPerMaskedWrite. It decodes the current image first, so a
// masked write on top of latent corruption behaves like real hardware:
// correctable errors are scrubbed in passing; an uncorrectable pattern
// surfaces as an error here instead of being silently folded into fresh
// parity.
func Update(scheme Scheme, st *Stored, off int, data []byte) (*Stored, error) {
	lineBytes := scheme.Org().LineBytes()
	if off < 0 || off+len(data) > lineBytes {
		return nil, fmt.Errorf("pair: update [%d,%d) outside %d-byte line", off, off+len(data), lineBytes)
	}
	current, claim := scheme.Decode(st)
	if claim == ecc.ClaimDetected {
		return nil, fmt.Errorf("pair: masked write hit an uncorrectable line")
	}
	merged := make([]byte, lineBytes)
	copy(merged, current)
	copy(merged[off:], data)
	return scheme.Encode(merged), nil
}
